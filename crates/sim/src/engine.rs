//! The buffer-level, single-disk VOD server engine.
//!
//! See the crate docs for the service model. The engine is deterministic:
//! it consumes a pre-generated arrival trace and charges worst-case disk
//! latencies (the paper's own modelling assumption), so two runs of the
//! same trace are bit-identical.
//!
//! # Observability
//!
//! The engine emits typed [`vod_obs::Event`]s — cycle plans, services,
//! admissions/deferrals/rejections, buffer allocations, underflows, and
//! occupancy high-water marks — into the [`Obs`] handle passed to
//! [`DiskEngine::with_observer`]. Events carry only simulated time and
//! values the engine already computed, so an attached sink never perturbs
//! the run (asserted by `recorder_sink_does_not_perturb_the_run`).
//!
//! [`DiskEngine::new`] attaches a [`vod_obs::StderrSink`] when any of the
//! historical `VOD_DEBUG_CYCLE`, `VOD_DEBUG_SVC`, or `VOD_DEBUG_UNDERFLOW`
//! environment variables is set (each enables its event kind), otherwise
//! instrumentation is detached and costs a single branch per site.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vod_core::scheme::Sizer;
use vod_core::{memory, AdmissionController, ArrivalLog, SchemeKind, SystemParams};
use vod_disk::{Disk, LatencyModel};
use vod_obs::metrics::{
    Metrics, CTR_ADMITTED, CTR_CYCLES, CTR_DEFERRED, CTR_REJECTED, CTR_SERVICES, CTR_UNDERFLOWS,
    PHASE_ADMISSION, PHASE_CYCLE_PLAN, PHASE_SERVICE,
};
use vod_obs::span::{self, AnnoValue, SpanId, SpanKind, SpanStatus, TraceId};
use vod_obs::timeseries::{engine_series, Series, SeriesRecorder};
use vod_obs::{Counter, Event, EventKind, Histo, Obs, RejectReason};
use vod_sched::{AdmissionTiming, SchedulingMethod};
use vod_types::{Bits, ConfigError, Instant, RequestId, Seconds, VideoId};
use vod_workload::Arrival;

use crate::metrics::{AuditRecord, DiskRunStats, IlSample};
use crate::slab::{Slab, SlotId};
use crate::stream::Stream;

/// Configuration of one engine run.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Disk, consumption rate, scheduling method, α.
    pub params: SystemParams,
    /// The buffer allocation scheme under test.
    pub scheme: SchemeKind,
    /// Retention horizon of the `k_log` estimator (`T_log`). The paper
    /// uses 40 min for Round-Robin and 20 min for Sweep\*/GSS\*.
    pub t_log: Seconds,
    /// Total memory available for buffers; `None` = unbounded (the
    /// latency experiments measure memory instead of limiting it).
    ///
    /// The reservation check runs at *arrival* time; a request deferred
    /// by Assumption 1 is not re-checked when it is finally admitted, so
    /// occupancy can transiently exceed the reservation model until the
    /// next departure. The multi-disk capacity experiments use
    /// [`crate::CapacitySim`], which reserves at admission, instead.
    pub memory_budget: Option<Bits>,
    /// Length of every video (for play-position ordering and end-of-video
    /// read capping).
    pub video_length: Seconds,
    /// How disk latency is charged per service: the worst case the sizing
    /// formulas assume (the paper's model), or sampled from actual head
    /// movement over the on-disk layout (a realism ablation — buffers are
    /// still *sized* for the worst case, so services complete early).
    pub latency_model: LatencyModel,
    /// Seed for the sampled-latency rotation draw (ignored under
    /// [`LatencyModel::WorstCase`]).
    pub latency_seed: u64,
    /// Event-driven fast-forward (default on): idle stretches advance in
    /// one jump to the next interesting time — the minimum over the next
    /// arrival, the earliest *live* departure (dead heap entries are
    /// swept in the same pass), and the deferral queue's next slot
    /// boundary — instead of hopping event-by-event through stale heap
    /// entries. Provably equivalent: every skipped hop mutates only the
    /// clock, so `DiskRunStats` is bit-identical either way (pinned by
    /// the `fastforward` tests and proptest). `false` is the
    /// `--no-fast-forward` escape hatch taking the legacy hop-by-hop
    /// path.
    pub fast_forward: bool,
    /// Number of physical disks the node's capacity is striped over
    /// (≥ 1). Purely an admission-side partition: each disk carries an
    /// equal share of the stream bound `N`, and a chaos `DiskDegrade`
    /// fault throttles one share without downing the node. `1` (the
    /// paper's single-disk model) is the default and the healthy path.
    pub disks: usize,
}

impl EngineConfig {
    /// The paper's configuration for a given method and scheme:
    /// `T_log` = 40 min (Round-Robin) / 20 min (Sweep\*, GSS\*),
    /// unbounded memory, 120-minute videos.
    #[must_use]
    pub fn paper(method: SchedulingMethod, scheme: SchemeKind) -> Self {
        let t_log = match method {
            SchedulingMethod::RoundRobin => Seconds::from_minutes(40.0),
            _ => Seconds::from_minutes(20.0),
        };
        EngineConfig {
            params: SystemParams::paper_defaults(method),
            scheme,
            t_log,
            memory_budget: None,
            video_length: Seconds::from_minutes(120.0),
            latency_model: LatencyModel::WorstCase,
            latency_seed: 0x5eed,
            fast_forward: true,
            disks: 1,
        }
    }
}

/// Scheme-specific runtime state.
enum SchemeState {
    /// Static and StaticMaxUse: no estimator, admission is `n < N`.
    Static,
    /// The naive Fig. 3 scheme: estimates `k` but does not enforce.
    Naive(ArrivalLog),
    /// The paper's scheme: full predict-and-enforce.
    Dynamic(Box<AdmissionController>),
}

/// A request waiting in the admission queue `Q`.
#[derive(Clone, Copy, Debug)]
struct Pending {
    id: RequestId,
    video: VideoId,
    arrived: Instant,
    viewing: Seconds,
    n_at_arrival: usize,
    /// The next virtual slot/period/group boundary after arrival — the
    /// earliest instant the scheduling method will first service this
    /// request (Fixed-Stretch slot semantics behind Eqs. 2–4).
    eligible_at: Instant,
    deferred_counted: bool,
    /// The lifecycle trace (observability only — pure data-flow).
    trace: TraceId,
}

/// Aggregate-memory accounting: `used(t) = levels − CR·(draining·t − Σ tᵢ)`
/// over all viewing streams, updated incrementally (O(1) per event).
#[derive(Debug, Default, Clone, Copy)]
struct MemTracker {
    levels: f64,
    draining: f64,
    time_sum: f64,
    peak: f64,
}

impl MemTracker {
    fn used_at(&self, t: Instant, cr: f64) -> f64 {
        (self.levels - cr * (self.draining * t.as_secs_f64() - self.time_sum)).max(0.0)
    }
    fn on_first_fill(&mut self, t: Instant) {
        self.draining += 1.0;
        self.time_sum += t.as_secs_f64();
    }
    fn on_materialize(&mut self, old_time: Instant, new_time: Instant, consumed: Bits) {
        self.levels -= consumed.as_f64();
        self.time_sum += new_time.as_secs_f64() - old_time.as_secs_f64();
    }
    fn on_fill(&mut self, read: Bits) {
        self.levels += read.as_f64();
    }
    fn on_depart(&mut self, level: Bits, at: Instant) {
        self.levels -= level.as_f64();
        self.draining -= 1.0;
        self.time_sum -= at.as_secs_f64();
    }
    /// Updates the high-water mark; returns the new peak when one was set
    /// (so the caller can emit a [`Event::PoolOccupancy`] for it).
    fn observe(&mut self, t: Instant, cr: f64) -> Option<f64> {
        let u = self.used_at(t, cr);
        if u > self.peak {
            self.peak = u;
            Some(u)
        } else {
            None
        }
    }
}

/// Metric handles resolved once at construction. Registration takes a
/// lock, so the hot loop only ever touches pre-resolved handles —
/// relaxed atomics when a registry is attached, single-branch no-ops
/// otherwise. Values mirror already-maintained [`DiskRunStats`]
/// fields plus wall-clock phase timings; the engine never reads them
/// back, so an attached registry cannot perturb a run.
struct EngineMetrics {
    cycle_plan: Histo,
    service: Histo,
    admission: Histo,
    cycles: Counter,
    services: Counter,
    admitted: Counter,
    deferred: Counter,
    rejected: Counter,
    underflows: Counter,
}

impl EngineMetrics {
    fn resolve(m: &Metrics) -> Self {
        EngineMetrics {
            cycle_plan: m.histogram(PHASE_CYCLE_PLAN),
            service: m.histogram(PHASE_SERVICE),
            admission: m.histogram(PHASE_ADMISSION),
            cycles: m.counter(CTR_CYCLES),
            services: m.counter(CTR_SERVICES),
            admitted: m.counter(CTR_ADMITTED),
            deferred: m.counter(CTR_DEFERRED),
            rejected: m.counter(CTR_REJECTED),
            underflows: m.counter(CTR_UNDERFLOWS),
        }
    }
}

/// Time-series handles resolved once when a [`SeriesRecorder`] is
/// attached (see [`DiskEngine::set_series_recorder`]). Sampling is
/// emission-gated exactly like spans: with no recorder attached the
/// cycle boundary skips the sampling block entirely, and the sampled
/// values are ones the engine already maintains — an attached recorder
/// never perturbs the run (pinned by the non-perturbation tests).
struct EngineSeries {
    pool_used: std::sync::Arc<Series>,
    active_streams: std::sync::Arc<Series>,
    admission_headroom: std::sync::Arc<Series>,
    deferral_queue: std::sync::Arc<Series>,
    cycle_service: std::sync::Arc<Series>,
}

impl EngineSeries {
    fn resolve(rec: &SeriesRecorder) -> Self {
        EngineSeries {
            pool_used: rec.series(engine_series::POOL_USED_BITS),
            active_streams: rec.series(engine_series::ACTIVE_STREAMS),
            admission_headroom: rec.series(engine_series::ADMISSION_HEADROOM),
            deferral_queue: rec.series(engine_series::DEFERRAL_QUEUE_DEPTH),
            cycle_service: rec.series(engine_series::CYCLE_SERVICE_S),
        }
    }
}

/// The single-disk server engine.
pub struct DiskEngine {
    cfg: EngineConfig,
    sizer: Sizer,
    scheme: SchemeState,
    t: Instant,
    streams: Slab<Stream>,
    /// Admission order of active streams (the Round-Robin base order).
    base_order: Vec<SlotId>,
    /// The current cycle's service order and position.
    order: Vec<SlotId>,
    cursor: usize,
    cycle_start: Instant,
    cycle_active: bool,
    /// Reads performed in the current cycle (progress detection).
    cycle_services: u64,
    /// Mid-cycle insertions the current cycle can still absorb without
    /// pushing tail refills past their dues.
    cycle_insertions_left: usize,
    last_period: Option<Seconds>,
    pending: VecDeque<Pending>,
    /// Departure times of viewing streams, keyed for eager processing.
    /// Ordered by `(at, raw id)` exactly as before the slab refactor — the
    /// slot only rides along; raw ids are unique, so it never decides.
    departures: BinaryHeap<Reverse<(Instant, u64, SlotId)>>,
    /// Lazy-deletion min-heap over stream due times. `service` pushes a
    /// fresh entry after every stream-state change, so the newest entry
    /// per stream recomputes bit-exactly; stale entries (departed stream,
    /// superseded due) are discarded when they surface in
    /// [`Self::earliest_due`].
    due_heap: BinaryHeap<Reverse<(Instant, u64, SlotId)>>,
    /// Reused scratch for [`Self::sort_by_position`]: avoids a key-map
    /// allocation per cycle.
    sort_scratch: Vec<(f64, SlotId)>,
    /// Single-entry memo of `worst_disk_latency(n)` — a pure function of
    /// the (fixed) disk profile and `n`, recomputed only when the active
    /// stream count changes. Exact: a hit returns the identical bits.
    dl_memo: Option<(usize, Seconds)>,
    /// Single-entry memo of [`Self::period_estimate`], pure in
    /// `(n, last_k)` for fixed parameters. Exact for the same reason.
    period_memo: Option<(usize, usize, Seconds)>,
    mem: MemTracker,
    conc_events: Vec<(Instant, i32)>,
    stats: DiskRunStats,
    last_k: usize,
    /// Physical drive model; present only under sampled latency.
    sampled_disk: Option<Box<Disk>>,
    rng: SmallRng,
    obs: Obs,
    m: EngineMetrics,
    /// Monotone id source for ingested requests (engine-owned so the
    /// steppable API and `run` mint identical id sequences).
    next_request_id: u64,
    /// Lifetime progress-step counter backing the no-progress guard.
    iters: u64,
    /// Scope seed for deterministic trace derivation (defaults to the
    /// latency seed; see [`Self::set_trace_scope`]).
    trace_seed: u64,
    /// The open cycle span, when tracing (trace + span id).
    cycle_span: Option<(TraceId, SpanId)>,
    /// Monotone cycle-span sequence (advances whether or not tracing is
    /// on, so span ids never depend on when a sink was attached).
    cycle_seq: u64,
    /// Whether per-cycle spans — cycle spans and steady-state service
    /// spans — are emitted when tracing (first-fill service spans always
    /// are). Long traced runs — the cluster bench — turn this off:
    /// per-cycle spans dominate the event volume without feeding the
    /// lifecycle audit. Emission-only; span sequence numbers advance
    /// regardless.
    trace_per_cycle: bool,
    /// Cycle-boundary time-series handles; `None` (the default) skips
    /// sampling entirely.
    series: Option<EngineSeries>,
    /// Chaos throttle on the effective stream bound: admission treats the
    /// disk bound as `max(1, ⌊capacity_factor·N⌋)`. `1.0` (the default)
    /// is the healthy path — every throttle site is gated on `< 1.0`, so
    /// an unthrottled run takes bit-identical branches to a build without
    /// the hook. A slower disk is exactly a smaller service capacity `N`,
    /// so tightening admission models `NodeSlow` without ever risking an
    /// Assumption-1 underflow.
    capacity_factor: f64,
    /// Chaos throttle on the memory budget: admission's reservation check
    /// compares against `memory_factor × budget`. `1.0` = healthy (same
    /// gating discipline as `capacity_factor`); no-op when the config has
    /// no budget.
    memory_factor: f64,
    /// Per-disk chaos throttles: the fraction of each disk's capacity
    /// share still available (`1.0` = healthy). One entry per configured
    /// disk. A degraded disk shrinks the node's effective stream bound
    /// by its share — partial capacity loss without downing the node.
    disk_factors: Vec<f64>,
    /// Chaos error-rate throttle in `[0, 1]`: the fraction of requests
    /// the node's disks fail and retry. Deterministic by the paper's
    /// equivalence — an error rate `r` is a capacity multiplier `1 − r`
    /// on the admission bound, never a random per-request coin flip.
    error_rate: f64,
    /// Cached product of every capacity-side throttle
    /// (`capacity_factor × (1 − error_rate) × mean(disk_factors)`),
    /// recomputed on each setter call so the admission path pays one
    /// comparison. Exactly `1.0` when healthy.
    capacity_combined: f64,
}

/// One stream (active or queued) evicted from a crashed engine — what a
/// cluster failover policy needs to re-dispatch it elsewhere.
#[derive(Clone, Copy, Debug)]
pub struct EvictedStream {
    /// The video the stream was playing.
    pub video: VideoId,
    /// Viewing time left at the crash instant (full `viewing` for
    /// requests that never started; may be zero for streams evicted at
    /// their departure boundary).
    pub viewing_left: Seconds,
    /// The lifecycle trace the stream rode (its root span was closed
    /// `Refused` at eviction; a migration mints a fresh trace).
    pub trace: TraceId,
    /// True for in-service streams, false for queued requests.
    pub was_active: bool,
}

/// Scope salt separating the engine's cycle-span trace from request
/// traces derived under the same seed.
const ENGINE_TRACE_SCOPE: u64 = 0x0063_7963_6c65; // "cycle"

/// Outcome of one engine progress step (see [`DiskEngine::step_body`]).
enum Step {
    /// Serviced a stream, planned a cycle, or advanced the clock.
    Progressed,
    /// No internal work left and no external event to wait for.
    Drained,
}

impl DiskEngine {
    /// Builds an engine with the historical default observer: a stderr
    /// sink when any `VOD_DEBUG_*` variable is set, detached otherwise
    /// (see the module docs).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for infeasible parameters.
    pub fn new(cfg: EngineConfig) -> Result<Self, ConfigError> {
        Self::with_observer(cfg, Obs::from_env())
    }

    /// Builds an engine emitting lifecycle events into `obs`. The handle
    /// is shared with the scheme's [`AdmissionController`] (estimator
    /// clamps). Any sink is observation-only: the run is bit-identical to
    /// one with [`Obs::null`].
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for infeasible parameters.
    pub fn with_observer(cfg: EngineConfig, obs: Obs) -> Result<Self, ConfigError> {
        cfg.params.validate()?;
        if !cfg.video_length.is_valid_duration() || cfg.video_length <= Seconds::ZERO {
            return Err(ConfigError::new("video_length", "must be positive"));
        }
        if cfg.disks == 0 {
            return Err(ConfigError::new("disks", "must be at least 1"));
        }
        let rng = SmallRng::seed_from_u64(cfg.latency_seed);
        let sampled_disk = match cfg.latency_model {
            LatencyModel::WorstCase => None,
            LatencyModel::Sampled => Some(Box::new(Disk::new(cfg.params.disk.clone())?)),
        };
        let m = EngineMetrics::resolve(obs.metrics());
        let sizer = Sizer::new_instrumented(cfg.scheme, &cfg.params, obs.metrics())?;
        let scheme = match cfg.scheme {
            SchemeKind::Static | SchemeKind::StaticMaxUse => SchemeState::Static,
            SchemeKind::NaiveDynamic => SchemeState::Naive(ArrivalLog::new(cfg.t_log)),
            SchemeKind::Dynamic => {
                let mut ctl = AdmissionController::new_instrumented(
                    cfg.params.clone(),
                    cfg.t_log,
                    obs.metrics(),
                )?;
                ctl.set_observer(obs.clone());
                SchemeState::Dynamic(Box::new(ctl))
            }
        };
        let disk_factors = vec![1.0; cfg.disks];
        Ok(DiskEngine {
            cfg,
            sizer,
            scheme,
            t: Instant::ZERO,
            streams: Slab::new(),
            base_order: Vec::new(),
            order: Vec::new(),
            cursor: 0,
            cycle_start: Instant::ZERO,
            cycle_active: false,
            cycle_services: 0,
            cycle_insertions_left: usize::MAX,
            last_period: None,
            pending: VecDeque::new(),
            departures: BinaryHeap::new(),
            due_heap: BinaryHeap::new(),
            sort_scratch: Vec::new(),
            dl_memo: None,
            period_memo: None,
            mem: MemTracker::default(),
            conc_events: Vec::new(),
            stats: DiskRunStats::default(),
            last_k: 0,
            sampled_disk,
            rng,
            obs,
            m,
            next_request_id: 0,
            iters: 0,
            trace_seed: 0,
            cycle_span: None,
            cycle_seq: 0,
            trace_per_cycle: true,
            series: None,
            capacity_factor: 1.0,
            memory_factor: 1.0,
            disk_factors,
            error_rate: 0.0,
            capacity_combined: 1.0,
        }
        .with_default_trace_scope())
    }

    fn with_default_trace_scope(mut self) -> Self {
        self.trace_seed = self.cfg.latency_seed;
        self
    }

    /// Re-scopes trace-id derivation (default: the latency seed).
    /// Cluster nodes and multi-seed runners give each engine a distinct
    /// scope so traces from concurrently running engines never collide
    /// in a shared JSONL stream. Observability only — no admission or
    /// service decision reads it.
    pub fn set_trace_scope(&mut self, seed: u64) {
        self.trace_seed = seed;
    }

    /// Toggles per-cycle spans — cycle spans and steady-state service
    /// spans (default on). With `false`, only each stream's *first-fill*
    /// service span is emitted — the one that closes the
    /// time-to-first-service window. Affects emission only: span
    /// sequencing and every scheduling decision are identical either way.
    pub fn set_per_cycle_tracing(&mut self, on: bool) {
        self.trace_per_cycle = on;
    }

    /// Attaches a [`SeriesRecorder`]: at every completed service cycle
    /// the engine samples pool occupancy, active streams, Assumption-1
    /// admission headroom, deferral-queue depth, and the cycle's service
    /// time into the recorder's series (see
    /// [`vod_obs::timeseries::engine_series`]). Observation-only — the
    /// sampled values are state the engine already maintains, so runs
    /// with and without a recorder are bit-identical.
    pub fn set_series_recorder(&mut self, rec: &SeriesRecorder) {
        self.series = Some(EngineSeries::resolve(rec));
    }

    /// Samples the cycle-boundary series, if a recorder is attached.
    /// `admission_headroom` takes `&mut self` (it advances the
    /// controller's min-aggregate cursor, a semantics-preserving lazy
    /// evaluation), so values are computed before the handles borrow.
    fn sample_series(&mut self) {
        if self.series.is_none() {
            return;
        }
        let t = self.t;
        let pool_used = self.mem.used_at(t, self.cfg.params.cr().as_f64());
        let active = self.streams.len() as f64;
        let headroom = self.admission_headroom() as f64;
        let queue = self.pending.len() as f64;
        let period = self.last_period.map(Seconds::as_secs_f64);
        let series = self.series.as_ref().expect("checked above");
        let ts = t.as_secs_f64();
        series.pool_used.push(ts, pool_used);
        series.active_streams.push(ts, active);
        series.admission_headroom.push(ts, headroom);
        series.deferral_queue.push(ts, queue);
        if let Some(p) = period {
            series.cycle_service.push(ts, p);
        }
    }

    /// The engine-scoped trace carrying cycle spans.
    fn engine_trace(&self) -> TraceId {
        TraceId::derive(self.trace_seed ^ ENGINE_TRACE_SCOPE, 0)
    }

    /// Runs the engine over a time-sorted arrival trace (all targeting
    /// this disk) and returns the measurements. The run continues until
    /// every admitted stream has departed.
    ///
    /// # Panics
    ///
    /// Panics if the trace is not time-sorted, or if the engine fails to
    /// make progress (a bug, guarded by an iteration bound).
    #[must_use]
    pub fn run(mut self, arrivals: &[Arrival]) -> DiskRunStats {
        assert!(
            arrivals.windows(2).all(|w| w[0].at <= w[1].at),
            "arrival trace must be time-sorted"
        );
        let mut ai = 0usize;

        loop {
            // Retire departures and ingest arrivals up to the current
            // time. Departures first: a request arriving "now" must see
            // the true number of streams in service, not corpses holding
            // slots until the cycle boundary.
            self.process_due_departures();
            while ai < arrivals.len() && arrivals[ai].at <= self.t {
                self.ingest(&arrivals[ai]);
                ai += 1;
            }
            match self.step_body(arrivals.get(ai).map(|a| a.at)) {
                Step::Progressed => {}
                Step::Drained => break,
            }
        }

        self.finalize()
    }

    /// One progress step of the service loop: plan/start a cycle, service
    /// the stream at the cursor, or jump the clock to the next event.
    /// `next_arrival` is the earliest *external* arrival the caller still
    /// holds — `run` passes the trace head, the steppable API passes its
    /// advance horizon — so idle jumps never skip over an ingestion point.
    ///
    /// The caller owns departure processing and arrival ingestion; this is
    /// the exact loop body `run` has always executed, factored out so a
    /// cluster front end can drive a node arrival-by-arrival with
    /// bit-identical results.
    fn step_body(&mut self, next_arrival: Option<Instant>) -> Step {
        // Generous progress bound: every step either services a buffer
        // or advances to the next event.
        self.iters += 1;
        assert!(
            self.iters < 200_000_000,
            "engine failed to make progress at {}",
            self.t
        );

        {
            if self.cursor >= self.order.len() {
                // ---- Cycle boundary ----
                let mut idle_cycle = false;
                if self.cycle_active {
                    self.last_period = Some(self.t - self.cycle_start);
                    self.stats.cycles += 1;
                    self.m.cycles.inc();
                    self.cycle_active = false;
                    idle_cycle = self.cycle_services == 0;
                    if let Some((tr, sp)) = self.cycle_span.take() {
                        self.obs.span_end(self.t, tr, sp, SpanStatus::Ok);
                    }
                    self.sample_series();
                }
                self.order.clear();
                self.process_due_departures();
                self.try_admissions();
                // One sample per boundary: order rebuild, plus the
                // cycle-start planning when the roster is non-empty.
                let plan_timer = self.m.cycle_plan.start_timer();
                self.rebuild_order();

                if self.order.is_empty() {
                    plan_timer.stop();
                    // Idle: jump to the next external event (arrival,
                    // departure, or a queued request's slot boundary).
                    let next = if self.cfg.fast_forward {
                        self.next_event_horizon(next_arrival)
                    } else {
                        let candidates = [
                            next_arrival,
                            self.earliest_departure(),
                            self.pending.front().map(|p| p.eligible_at),
                        ];
                        candidates.iter().flatten().copied().min()
                    };
                    match next {
                        Some(target) => self.t = target.max(self.t),
                        None => {
                            if self.pending.is_empty() {
                                return Step::Drained;
                            }
                            // Unreachable in practice: an empty roster
                            // admits freely; surviving queue entries were
                            // memory-rejected — drop them.
                            while let Some(p) = self.pending.pop_front() {
                                self.stats.rejected += 1;
                                self.m.rejected.inc();
                                let n = self.streams.len() + self.pending.len();
                                self.obs.emit_with(EventKind::RequestRejected, || {
                                    Event::RequestRejected {
                                        at: self.t,
                                        n,
                                        reason: RejectReason::QueueDropped,
                                    }
                                });
                                if self.obs.tracing() && !p.trace.is_none() {
                                    let root = SpanId::derive(p.trace, span::SEQ_REQUEST);
                                    let adm = SpanId::derive(p.trace, span::SEQ_ADMISSION);
                                    self.obs.span_annotate(
                                        self.t,
                                        p.trace,
                                        adm,
                                        "reject_reason",
                                        AnnoValue::Str(RejectReason::QueueDropped.label()),
                                    );
                                    self.obs.span_end(self.t, p.trace, adm, SpanStatus::Refused);
                                    self.obs
                                        .span_end(self.t, p.trace, root, SpanStatus::Refused);
                                }
                            }
                        }
                    }
                    return Step::Progressed;
                }

                let plan = self.plan_cycle_start();
                plan_timer.stop();
                if idle_cycle && plan.is_some_and(|p| p.start <= self.t) {
                    // The last cycle read nothing and we would re-run it at
                    // the same instant: every stream is over-provisioned
                    // relative to its current allocation. Idle until just
                    // before the first buffer drains (or the next external
                    // event), where a refill is guaranteed to be non-empty
                    // and still completes in time.
                    let fallback = plan
                        .expect("idle_cycle branch is guarded by plan.is_some_and above")
                        .fallback;
                    let mut target = fallback;
                    if let Some(a) = next_arrival {
                        target = target.min(a);
                    }
                    if let Some(d) = self.earliest_departure() {
                        target = target.min(d);
                    }
                    if target > self.t {
                        self.t = target;
                        self.order.clear();
                        return Step::Progressed;
                    }
                }
                let Some(plan) = plan else {
                    // Nothing needs service: everyone is provisioned to
                    // departure. Jump to the earliest departure.
                    self.order.clear();
                    if let Some(d) = self.earliest_departure() {
                        self.t = match next_arrival {
                            Some(a) => a.min(d).max(self.t),
                            None => d.max(self.t),
                        };
                    }
                    return Step::Progressed;
                };
                let mut start = plan.start;
                if start < self.t {
                    start = self.t;
                }
                // Arrivals (and queued requests reaching their slot
                // boundary) before the planned start are handled first so
                // admission (and BubbleUp) can react.
                let next_external = [
                    next_arrival,
                    self.pending
                        .front()
                        .map(|p| p.eligible_at)
                        .filter(|&e| e > self.t),
                ]
                .iter()
                .flatten()
                .copied()
                .min();
                if let Some(e) = next_external {
                    if e < start {
                        self.t = e.max(self.t);
                        self.order.clear();
                        return Step::Progressed;
                    }
                }
                // `due_min` feeds only the event payload, but the query
                // is run unconditionally: its amortized pops are what
                // keep the lazy-deletion due heap tight (one push per
                // service, stale entries popped as they surface). Gating
                // it behind the event kind turns the heap append-only
                // between `note_due` compactions, and the compaction
                // churn costs ~2x this cell throughput on sustained-load
                // cells. Observation-only either way: the result feeds
                // nothing but the event, so the run is bit-identical.
                {
                    let due_min = self.earliest_due();
                    self.obs
                        .emit_with(EventKind::CyclePlanned, || Event::CyclePlanned {
                            at: self.t,
                            start,
                            planned: plan.start,
                            n: self.streams.len(),
                            due_min,
                            insertion_budget: plan.insertion_budget,
                        });
                }
                self.t = start;
                self.cycle_start = start;
                self.cursor = 0;
                self.cycle_active = true;
                let cseq = self.cycle_seq;
                self.cycle_seq += 1;
                if self.obs.tracing() && self.trace_per_cycle {
                    let tr = self.engine_trace();
                    let sp = SpanId::derive(tr, cseq);
                    self.obs.span_start(start, tr, sp, None, SpanKind::Cycle);
                    self.obs.span_annotate(
                        start,
                        tr,
                        sp,
                        "n",
                        AnnoValue::U64(self.streams.len() as u64),
                    );
                    self.cycle_span = Some((tr, sp));
                }
                self.cycle_services = 0;
                self.cycle_insertions_left = plan.insertion_budget;
                if let Some(peak) = self.mem.observe(self.t, self.cfg.params.cr().as_f64()) {
                    let streams = self.streams.len();
                    self.obs
                        .emit_with(EventKind::PoolOccupancy, || Event::PoolOccupancy {
                            at: self.t,
                            used: Bits::new(peak),
                            peak: Bits::new(peak),
                            streams,
                        });
                }
                return Step::Progressed;
            }

            // ---- Mid-cycle: service the stream at the cursor ----
            // BubbleUp admits after every service; GSS* at group
            // boundaries; Sweep* only at period boundaries (handled at
            // the cycle boundary above).
            let timing = self.cfg.params.method.admission_timing();
            if timing == AdmissionTiming::AfterCurrentService
                || (timing == AdmissionTiming::NextGroup && self.at_group_boundary())
            {
                self.try_admissions();
            }

            let slot = self.order[self.cursor];
            self.cursor += 1;
            let Some(s) = self.streams.get(slot) else {
                return Step::Progressed; // departed earlier in the cycle
            };
            if let Some(d) = s.departs_at() {
                if d <= self.t {
                    self.depart(slot, d);
                    return Step::Progressed;
                }
            }
            self.service(slot);
        }
        Step::Progressed
    }

    // ---------- steppable node API ----------

    /// The engine's simulated clock.
    #[must_use]
    pub fn now(&self) -> Instant {
        self.t
    }

    /// Streams currently in service.
    #[must_use]
    pub fn in_service(&self) -> usize {
        self.streams.len()
    }

    /// Requests waiting in the node-local admission queue `Q`.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.pending.len()
    }

    /// Total load offered to this node: in-service plus queued streams.
    /// This is the count load-balancing dispatch policies compare.
    #[must_use]
    pub fn offered(&self) -> usize {
        self.streams.len() + self.pending.len()
    }

    /// Requests deferred by Assumption-1 enforcement so far.
    #[must_use]
    pub fn deferrals(&self) -> u64 {
        self.stats.deferrals
    }

    /// How many more requests this node could take *right now* without
    /// an Assumption-1 deferral: `min(min_i(n_i + k_i), N)` minus
    /// everything already offered (in service or queued). Static/naive
    /// schemes only enforce the disk bound `N`. (`&mut` only to advance
    /// the controller's min-aggregate cursor; nothing is perturbed.)
    pub fn admission_headroom(&mut self) -> usize {
        let offered = self.streams.len() + self.pending.len();
        let eff = self.effective_max_requests();
        let bound = match &mut self.scheme {
            SchemeState::Dynamic(ctl) => ctl.admission_bound().min(eff),
            SchemeState::Static | SchemeState::Naive(_) => eff,
        };
        bound.saturating_sub(offered)
    }

    /// The disk-stream bound admission enforces: `N`, throttled to
    /// `max(1, ⌊combined·N⌋)` while any capacity-side fault is active,
    /// where `combined = capacity_factor × (1 − error_rate) ×
    /// mean(disk_factors)`. Scheduling (cycle planning, buffer sizing)
    /// keeps using the true `N` — only *admission* tightens, which can
    /// never cause an underflow.
    fn effective_max_requests(&self) -> usize {
        let n = self.cfg.params.max_requests();
        if self.capacity_combined < 1.0 {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let throttled = (n as f64 * self.capacity_combined).floor() as usize;
            throttled.max(1)
        } else {
            n
        }
    }

    /// Refreshes the cached capacity throttle product after any setter.
    /// The product of all-1.0 factors is exactly `1.0`, so a healthy
    /// engine keeps taking the unthrottled branch bit for bit.
    fn recompute_capacity_combined(&mut self) {
        let mean_disk = self.disk_factors.iter().sum::<f64>() / self.disk_factors.len() as f64;
        self.capacity_combined = self.capacity_factor * (1.0 - self.error_rate) * mean_disk;
    }

    /// Chaos hook: throttles this node's effective stream bound to
    /// `factor × N` (clamped to `[0, 1]`; `1.0` restores full capacity).
    /// Deterministic and admission-only — see [`Self::effective_max_requests`].
    pub fn set_capacity_factor(&mut self, factor: f64) {
        self.capacity_factor = factor.clamp(0.0, 1.0);
        self.recompute_capacity_combined();
    }

    /// Chaos hook for a *partial* disk fault: disk `disk` keeps only
    /// `fraction` of its capacity share (clamped to `[0, 1]`; `1.0`
    /// heals it). With `d` configured disks each owns `N/d` of the
    /// stream bound, so degrading one disk multiplies the node's
    /// admission capacity by `(d − 1 + fraction) / d` — a fraction of
    /// the node throttles, the node stays up.
    ///
    /// # Panics
    ///
    /// Panics if `disk` is outside the configured disk count.
    pub fn set_disk_factor(&mut self, disk: usize, fraction: f64) {
        assert!(
            disk < self.disk_factors.len(),
            "disk {disk} outside the {}-disk engine",
            self.disk_factors.len()
        );
        self.disk_factors[disk] = fraction.clamp(0.0, 1.0);
        self.recompute_capacity_combined();
    }

    /// Chaos hook: a deterministic error-rate fault. A disk failing a
    /// fraction `rate` of requests serves `(1 − rate) × N` streams, so
    /// under the paper's "slower disk ≡ smaller N" equivalence the rate
    /// maps to a capacity multiplier on the admission bound — no random
    /// per-request failures, runs stay replayable. Clamped to `[0, 1]`;
    /// `0.0` heals.
    pub fn set_error_rate(&mut self, rate: f64) {
        self.error_rate = rate.clamp(0.0, 1.0);
        self.recompute_capacity_combined();
    }

    /// Chaos hook: clears every throttle — capacity, memory, per-disk
    /// factors, and error rate — restoring the healthy path (a node
    /// rejoin heals partial faults along with whole-node ones).
    pub fn clear_throttles(&mut self) {
        self.capacity_factor = 1.0;
        self.memory_factor = 1.0;
        self.disk_factors.fill(1.0);
        self.error_rate = 0.0;
        self.capacity_combined = 1.0;
    }

    /// Chaos hook: scales the memory budget seen by admission's
    /// reservation check to `factor × budget` (clamped to `[0, 1]`;
    /// `1.0` restores the full budget). No-op when the engine has no
    /// memory budget configured. Existing streams keep their buffers —
    /// pressure only refuses *new* reservations, exactly like a shrunk
    /// budget at arrival time.
    pub fn set_memory_factor(&mut self, factor: f64) {
        self.memory_factor = factor.clamp(0.0, 1.0);
    }

    /// The reservation-model memory this node would need with
    /// `prospective_n` concurrent streams at `now` — the same per-scheme
    /// `BS_k(n)` estimate arrival-time admission uses, so a dispatch
    /// policy can rank replicas by marginal memory cost. (`&mut` to prune
    /// the estimator's arrival log; pruning is semantics-preserving.)
    pub fn projected_memory(&mut self, prospective_n: usize, now: Instant) -> Bits {
        self.reservation_memory(prospective_n, now)
    }

    /// Memory headroom left under this node's budget if one more stream
    /// were admitted at `now`. Unbounded-memory nodes report the negated
    /// projected need, so "most headroom" still ranks by marginal cost.
    pub fn memory_headroom(&mut self, now: Instant) -> f64 {
        let offered = self.streams.len() + self.pending.len();
        let needed = self.reservation_memory(offered + 1, now).as_f64();
        match self.cfg.memory_budget {
            Some(budget) => self.throttled_budget(budget).as_f64() - needed,
            None => -needed,
        }
    }

    /// Pre-flight check for cluster dispatch: would an arrival offered at
    /// `now` pass this node's rejection rules *and* join service without
    /// an Assumption-1 deferral? A `false` verdict is what triggers
    /// overflow redirection to a sibling replica.
    pub fn would_accept(&mut self, now: Instant) -> bool {
        let offered = self.streams.len() + self.pending.len();
        offered < self.effective_max_requests()
            && self.admission_headroom() > 0
            && self.memory_admits(offered + 1, now)
    }

    /// Hands one arrival to the engine, exactly as [`Self::run`] would at
    /// the same instant: departures due by now retire first, then the
    /// request feeds the estimator and enters the admission queue (or is
    /// rejected). The caller must have advanced the engine to at least
    /// `a.at` (see [`Self::advance_to`]).
    ///
    /// # Panics
    ///
    /// Panics if `a.at` is in the engine's future — offering early would
    /// leak estimator knowledge backwards in time.
    pub fn offer(&mut self, a: &Arrival) {
        assert!(
            a.at <= self.t,
            "arrival at {} offered before the engine reached it (now {})",
            a.at,
            self.t
        );
        self.process_due_departures();
        self.ingest_traced(a, None);
    }

    /// [`Self::offer`], but continuing an externally minted trace (a
    /// cluster front end dispatching a request threads the dispatch
    /// trace through the node engine). Observability only: the engine's
    /// admission and scheduling behave exactly as [`Self::offer`].
    pub fn offer_traced(&mut self, a: &Arrival, trace: TraceId) {
        assert!(
            a.at <= self.t,
            "arrival at {} offered before the engine reached it (now {})",
            a.at,
            self.t
        );
        self.process_due_departures();
        self.ingest_traced(a, Some(trace));
    }

    /// Runs all internal work — services, departures, node-local
    /// admissions — until the clock reaches `horizon`. `horizon` plays
    /// the role of the next trace arrival in [`Self::run`]'s loop, so a
    /// subsequent [`Self::offer`] at `horizon` lands exactly where `run`
    /// would have ingested it.
    pub fn advance_to(&mut self, horizon: Instant) {
        while self.t < horizon {
            self.process_due_departures();
            match self.step_body(Some(horizon)) {
                Step::Progressed => {}
                Step::Drained => {
                    self.t = horizon;
                    break;
                }
            }
        }
    }

    /// Drains the engine — no further arrivals will be offered — and
    /// returns the run measurements, exactly as [`Self::run`] does after
    /// its trace is exhausted.
    #[must_use]
    pub fn finish(mut self) -> DiskRunStats {
        loop {
            self.process_due_departures();
            match self.step_body(None) {
                Step::Progressed => {}
                Step::Drained => break,
            }
        }
        self.finalize()
    }

    /// Chaos hook: a node crash. Evicts every active stream (in the
    /// deterministic admission-ring order) and every queued request
    /// (FIFO), closing their lifecycle spans `Refused` with an
    /// `"evicted"` annotation, and returns descriptors a failover policy
    /// can re-dispatch. Departed-stream bookkeeping follows the normal
    /// departure path — memory released, concurrency decremented, the
    /// controller notified — so the run stays internally consistent; the
    /// evictions are *not* counted as departures-with-service or as
    /// rejections (chaos accounting owns those outcomes). The engine
    /// survives empty: it can be advanced, rejoined, and offered new
    /// arrivals, with its estimator log and cumulative stats intact.
    pub fn evict_all(&mut self) -> Vec<EvictedStream> {
        let at = self.t;
        let cr = self.cfg.params.cr();
        // The in-flight cycle dies with the node.
        if let Some((tr, sp)) = self.cycle_span.take() {
            self.obs.span_end(at, tr, sp, SpanStatus::Ok);
        }
        self.cycle_active = false;
        self.cycle_services = 0;
        self.cycle_insertions_left = usize::MAX;
        self.order.clear();
        self.cursor = 0;
        let mut out = Vec::with_capacity(self.streams.len() + self.pending.len());
        let ring = std::mem::take(&mut self.base_order);
        for slot in ring {
            let Some(mut s) = self.streams.remove(slot) else {
                continue; // stale ring entry (stream already departed)
            };
            let id = s.id;
            let started = s.viewing_started();
            let old_time = s.level_at_time();
            let upd = s.advance_to(at, cr);
            if started {
                self.mem
                    .on_materialize(old_time, s.level_at_time(), upd.consumed);
            }
            self.note_deficit(id, at, upd.deficit);
            if started {
                self.mem.on_depart(s.level(), s.level_at_time());
            }
            self.obs
                .emit_with(EventKind::BufferFreed, || Event::BufferFreed {
                    at,
                    id,
                    released: s.level(),
                });
            if self.obs.tracing() && !s.trace.is_none() {
                let root = SpanId::derive(s.trace, span::SEQ_REQUEST);
                self.obs
                    .span_annotate(at, s.trace, root, "evicted", AnnoValue::Str("node_crash"));
                self.obs.span_end(at, s.trace, root, SpanStatus::Refused);
            }
            self.conc_events.push((at, -1));
            if let SchemeState::Dynamic(ctl) = &mut self.scheme {
                let _ = ctl.depart(id);
            }
            let viewing_left = match s.first_data_at {
                Some(first) => {
                    let watched = at - first;
                    if watched >= s.viewing {
                        Seconds::ZERO
                    } else {
                        s.viewing - watched
                    }
                }
                None => s.viewing,
            };
            out.push(EvictedStream {
                video: s.video,
                viewing_left,
                trace: s.trace,
                was_active: true,
            });
        }
        while let Some(p) = self.pending.pop_front() {
            if self.obs.tracing() && !p.trace.is_none() {
                let root = SpanId::derive(p.trace, span::SEQ_REQUEST);
                let adm = SpanId::derive(p.trace, span::SEQ_ADMISSION);
                self.obs.span_end(at, p.trace, adm, SpanStatus::Refused);
                self.obs
                    .span_annotate(at, p.trace, root, "evicted", AnnoValue::Str("node_crash"));
                self.obs.span_end(at, p.trace, root, SpanStatus::Refused);
            }
            out.push(EvictedStream {
                video: p.video,
                viewing_left: p.viewing,
                trace: p.trace,
                was_active: false,
            });
        }
        // Every heap entry is now stale; drop them instead of letting
        // lazy deletion sweep thousands of corpses one by one.
        self.departures.clear();
        self.due_heap.clear();
        self.dl_memo = None;
        self.period_memo = None;
        out
    }

    /// Lazily places a video on the sampled drive the first time any
    /// stream plays it (contiguous placement in id order, §2.1's layout).
    fn ensure_placed(disk: &mut Disk, video: VideoId, cr: vod_types::BitRate, length: Seconds) {
        if disk.layout().extent(video).is_none() {
            let _ = disk.place_video(video, cr * length);
        }
    }

    /// Records a consumption deficit as an underflow, ignoring float dust
    /// (fills are capped to land *exactly* at zero level at departure, so
    /// sub-byte negatives are rounding, not starvation).
    fn note_deficit(&mut self, id: RequestId, at: Instant, deficit: Bits) {
        if deficit.as_f64() > 64.0 {
            self.stats.underflows += 1;
            self.m.underflows.inc();
            self.stats.underflow_deficit += deficit;
            let n = self.streams.len();
            self.obs
                .emit_with(EventKind::Underflow, || Event::Underflow {
                    at,
                    id,
                    n,
                    deficit,
                });
        }
    }

    // ---------- arrival / admission ----------

    fn ingest(&mut self, a: &Arrival) {
        self.ingest_traced(a, None);
    }

    fn ingest_traced(&mut self, a: &Arrival, trace: Option<TraceId>) {
        let id = RequestId::new(self.next_request_id);
        self.next_request_id += 1;
        // The request's lifecycle trace: continue the caller's (cluster
        // dispatch) or derive one from the scope seed and the request
        // id. Derivation is unconditional and pure, so attaching a sink
        // can never change the id sequence.
        let trace = match trace {
            Some(t) if !t.is_none() => t,
            _ => TraceId::derive(self.trace_seed, id.raw()),
        };
        let root = SpanId::derive(trace, span::SEQ_REQUEST);
        if self.obs.tracing() {
            self.obs
                .span_start(a.at, trace, root, None, SpanKind::Request);
            self.obs
                .span_annotate(a.at, trace, root, "video", AnnoValue::U64(a.video.raw()));
        }
        // Every arrival feeds the estimator, admitted or not.
        match &mut self.scheme {
            SchemeState::Dynamic(ctl) => ctl.note_arrival(a.at),
            SchemeState::Naive(log) => log.record(a.at),
            SchemeState::Static => {}
        }
        let n = self.streams.len() + self.pending.len();
        // Immediate rejection rules (the paper's admission control at N,
        // plus the memory reservation when a budget is set). Queued
        // requests count: a request the disk can never absorb is rejected
        // now, not parked for an hour.
        if n >= self.effective_max_requests() {
            self.stats.rejected += 1;
            self.m.rejected.inc();
            self.obs
                .emit_with(EventKind::RequestRejected, || Event::RequestRejected {
                    at: a.at,
                    n,
                    reason: RejectReason::DiskFull,
                });
            self.end_refused(a.at, trace, root, RejectReason::DiskFull);
            return;
        }
        if !self.memory_admits(n + 1, a.at) {
            self.stats.rejected += 1;
            self.m.rejected.inc();
            self.obs
                .emit_with(EventKind::RequestRejected, || Event::RequestRejected {
                    at: a.at,
                    n,
                    reason: RejectReason::MemoryFull,
                });
            self.end_refused(a.at, trace, root, RejectReason::MemoryFull);
            return;
        }
        if self.obs.tracing() {
            let adm = SpanId::derive(trace, span::SEQ_ADMISSION);
            self.obs
                .span_start(a.at, trace, adm, Some(root), SpanKind::Admission);
        }
        let grid = self.admission_grid().as_secs_f64().max(1e-9);
        let next = (a.at.as_secs_f64() / grid).floor() + 1.0;
        self.pending.push_back(Pending {
            id,
            video: a.video,
            arrived: a.at,
            viewing: a.viewing,
            n_at_arrival: self.streams.len(),
            eligible_at: Instant::from_secs(next * grid),
            deferred_counted: false,
            trace,
        });
    }

    /// Closes a request's root span as refused with the reason that
    /// rejected it (immediate disk/memory rejection — no admission span
    /// was ever opened).
    fn end_refused(&self, at: Instant, trace: TraceId, root: SpanId, reason: RejectReason) {
        if self.obs.tracing() {
            self.obs.span_annotate(
                at,
                trace,
                root,
                "reject_reason",
                AnnoValue::Str(reason.label()),
            );
            self.obs.span_end(at, trace, root, SpanStatus::Refused);
        }
    }

    fn memory_admits(&mut self, prospective_n: usize, now: Instant) -> bool {
        let Some(budget) = self.cfg.memory_budget else {
            return true;
        };
        let budget = self.throttled_budget(budget);
        self.reservation_memory(prospective_n, now) <= budget
    }

    /// The memory budget after any active `MemoryPressure` throttle.
    fn throttled_budget(&self, budget: Bits) -> Bits {
        if self.memory_factor < 1.0 {
            budget * self.memory_factor
        } else {
            budget
        }
    }

    /// The per-scheme reservation-model memory need at `prospective_n`
    /// streams (the quantity [`Self::memory_admits`] compares against the
    /// budget). Factored out so cluster dispatch can rank replicas by it.
    fn reservation_memory(&mut self, prospective_n: usize, now: Instant) -> Bits {
        let period = self.period_estimate();
        match &mut self.scheme {
            SchemeState::Static => memory::min_memory_static(&self.cfg.params, prospective_n),
            SchemeState::Naive(log) => {
                let k = log.k_log(now, period) + self.cfg.params.alpha as usize;
                let bs = self.sizer.size(prospective_n, k);
                memory::min_memory_with(&self.cfg.params, bs, prospective_n, k)
            }
            SchemeState::Dynamic(ctl) => {
                let (k, _) = ctl.estimate_k(now, period);
                memory::min_memory_dynamic(&self.cfg.params, ctl.table(), prospective_n, k)
            }
        }
    }

    fn try_admissions(&mut self) {
        // Nothing to do on the overwhelmingly common empty/ineligible
        // queue: bail before starting the phase timer, so an attached
        // registry doesn't charge two clock reads per service for a
        // no-op (the admission phase now times actual admission work).
        match self.pending.front() {
            None => return,
            Some(head) if head.eligible_at > self.t => return,
            Some(_) => {}
        }
        let _t = self.m.admission.start_timer();
        loop {
            let Some(head) = self.pending.front().copied() else {
                return;
            };
            if head.eligible_at > self.t {
                return; // its slot boundary has not arrived yet (FIFO)
            }
            let mid_cycle = self.cycle_active && self.cursor < self.order.len();
            if mid_cycle && self.cycle_insertions_left == 0 {
                // The running cycle budgeted its start for a bounded
                // number of insertions; more would starve tail refills.
                // The request joins at the next cycle boundary.
                return;
            }
            let n = self.streams.len();
            if n >= self.effective_max_requests() {
                return; // wait for departures (deferred, not rejected)
            }
            let admitted = match &mut self.scheme {
                SchemeState::Static | SchemeState::Naive(_) => true,
                SchemeState::Dynamic(ctl) => {
                    if ctl.can_admit() {
                        ctl.admit(head.id).is_ok()
                    } else {
                        false
                    }
                }
            };
            if !admitted {
                // Deferred by Assumption 1: count once per request, keep
                // FIFO order.
                let mut newly_deferred = false;
                if let Some(front) = self.pending.front_mut() {
                    if !front.deferred_counted {
                        front.deferred_counted = true;
                        self.stats.deferrals += 1;
                        self.m.deferred.inc();
                        newly_deferred = true;
                    }
                }
                if newly_deferred {
                    self.obs
                        .emit_with(EventKind::RequestDeferred, || Event::RequestDeferred {
                            at: self.t,
                            id: head.id,
                            n,
                        });
                    if self.obs.tracing() && !head.trace.is_none() {
                        // Name the BS_k(n) constraint that deferred it.
                        let (label, bound) = match &mut self.scheme {
                            SchemeState::Dynamic(ctl) => {
                                let c = ctl.binding_constraint();
                                (c.label(), c.bound())
                            }
                            SchemeState::Static | SchemeState::Naive(_) => {
                                ("disk_bound", self.cfg.params.max_requests())
                            }
                        };
                        let adm = SpanId::derive(head.trace, span::SEQ_ADMISSION);
                        self.obs.span_annotate(
                            self.t,
                            head.trace,
                            adm,
                            "constraint",
                            AnnoValue::Str(label),
                        );
                        self.obs.span_annotate(
                            self.t,
                            head.trace,
                            adm,
                            "bound",
                            AnnoValue::U64(bound as u64),
                        );
                    }
                }
                return;
            }
            self.pending.pop_front();
            self.admit_stream(head);
        }
    }

    /// The virtual service-grid granularity the admitted request must
    /// align to: one stretched slot `Δ = DL + BS/TR` for Round-Robin
    /// (BubbleUp services the newcomer after the slot in execution), a
    /// full period `n·Δ` for Sweep\*, and a group `g·Δ` for GSS\*. This
    /// is the Fixed-Stretch slot structure the paper's Eqs. 2–4 assume;
    /// without it an idle server would admit every newcomer with bare-DL
    /// latency regardless of the buffer size, flattening Fig. 11.
    fn admission_grid(&self) -> Seconds {
        let n = self.streams.len().max(1);
        let dl = self
            .cfg
            .params
            .method
            .worst_disk_latency(&self.cfg.params.disk, n);
        let size = match self.cfg.scheme {
            SchemeKind::Static | SchemeKind::StaticMaxUse => self.sizer.max_size(),
            _ => self
                .sizer
                .size(n, self.last_k.max(self.cfg.params.alpha as usize)),
        };
        let delta = dl + size / self.cfg.params.tr();
        match self.cfg.params.method.admission_timing() {
            AdmissionTiming::AfterCurrentService => delta,
            AdmissionTiming::NextPeriod => delta * n as f64,
            AdmissionTiming::NextGroup => {
                delta * self.cfg.params.method.effective_group_size(n) as f64
            }
        }
    }

    fn admit_stream(&mut self, p: Pending) {
        let mut stream = Stream::new(p.id, p.video, p.arrived, p.viewing);
        stream.n_at_arrival = p.n_at_arrival;
        stream.eligible_at = p.eligible_at.max(self.t);
        stream.trace = p.trace;
        let slot = self.streams.insert(stream);
        self.stats.admitted += 1;
        self.m.admitted.inc();
        self.conc_events.push((self.t, 1));
        let n_now = self.streams.len();
        self.obs
            .emit_with(EventKind::RequestAdmitted, || Event::RequestAdmitted {
                at: self.t,
                id: p.id,
                n: n_now,
                waited: self.t - p.arrived,
            });
        if self.obs.tracing() && !p.trace.is_none() {
            // The bound that *allowed* the admission (mirrors the
            // deferral annotation so traces always name the decider).
            let (label, bound) = match &mut self.scheme {
                SchemeState::Dynamic(ctl) => {
                    let c = ctl.binding_constraint();
                    (c.label(), c.bound())
                }
                SchemeState::Static | SchemeState::Naive(_) => {
                    ("disk_bound", self.cfg.params.max_requests())
                }
            };
            let adm = SpanId::derive(p.trace, span::SEQ_ADMISSION);
            self.obs
                .span_annotate(self.t, p.trace, adm, "constraint", AnnoValue::Str(label));
            self.obs
                .span_annotate(self.t, p.trace, adm, "bound", AnnoValue::U64(bound as u64));
            self.obs
                .span_end(self.t, p.trace, adm, SpanStatus::Admitted);
        }
        // BubbleUp: service the newcomer right after the current service
        // AND keep it at that ring position (base_order is the ring).
        // GSS*: join at the next group boundary, persistently.
        // Sweep*: next cycle (appended; the position sort places it).
        match self.cfg.params.method.admission_timing() {
            AdmissionTiming::AfterCurrentService => {
                if self.cursor < self.order.len() {
                    self.cycle_insertions_left = self.cycle_insertions_left.saturating_sub(1);
                    // The ring slot just before the stream serviced next.
                    let anchor = self.order[self.cursor];
                    let ring_pos = self
                        .base_order
                        .iter()
                        .position(|&x| x == anchor)
                        .unwrap_or(self.base_order.len());
                    self.base_order.insert(ring_pos, slot);
                    self.order.insert(self.cursor, slot);
                } else {
                    self.base_order.push(slot);
                }
            }
            AdmissionTiming::NextGroup => {
                if self.cursor < self.order.len() {
                    self.cycle_insertions_left = self.cycle_insertions_left.saturating_sub(1);
                    let g = self
                        .cfg
                        .params
                        .method
                        .effective_group_size(self.streams.len());
                    let boundary = (self.cursor).div_ceil(g) * g;
                    let at = boundary.min(self.order.len());
                    // Membership order mirrors the cycle's chunk layout,
                    // so the same index keeps groups consistent.
                    let base_at = at.min(self.base_order.len());
                    self.base_order.insert(base_at, slot);
                    self.order.insert(at, slot);
                } else {
                    self.base_order.push(slot);
                }
            }
            AdmissionTiming::NextPeriod => {
                self.base_order.push(slot);
            }
        }
    }

    // ---------- service ----------

    fn service(&mut self, slot: SlotId) {
        let _t = self.m.service.start_timer();
        let cr = self.cfg.params.cr();
        let crf = cr.as_f64();
        let n_active = self.streams.len();
        let now = self.t;
        let id = self.streams[slot].id;

        // Allocation: compute (n_c, k_c) per scheme. The static scheme
        // never reads the period estimate, so it skips the computation
        // outright (the estimate only ever fed the estimating arms).
        let (n_c, k_c, audit) = match &self.scheme {
            SchemeState::Static => (self.cfg.params.max_requests(), 0, false),
            _ => {
                let period = self.period_estimate();
                match &mut self.scheme {
                    SchemeState::Static => unreachable!("matched above"),
                    SchemeState::Naive(log) => {
                        let k = log.k_log(now, period) + self.cfg.params.alpha as usize;
                        (n_active, k, true)
                    }
                    SchemeState::Dynamic(ctl) => {
                        let alloc = ctl
                            .allocate(id, now, period)
                            .expect("serviced streams are admitted");
                        (alloc.n, alloc.k, true)
                    }
                }
            }
        };
        self.last_k = k_c;

        let mut size = match self.cfg.scheme {
            SchemeKind::Static | SchemeKind::StaticMaxUse => self.sizer.max_size(),
            _ => self.sizer.size(n_c, k_c),
        };
        // StaticMaxUse: spread unused budget over in-service streams.
        if self.cfg.scheme == SchemeKind::StaticMaxUse {
            if let Some(budget) = self.cfg.memory_budget {
                let reserved = memory::min_memory_static(&self.cfg.params, n_active);
                let spare = (budget - reserved).clamp_non_negative();
                let extra = (spare / n_active.max(1) as f64).min(self.sizer.max_size());
                size += extra;
            }
        }

        // Data starts flowing once the seek completes; from then on the
        // transfer feeds the stream at TR ≫ CR, so the buffer only has to
        // cover consumption up to the end of the seek (the same seek-phase
        // accounting behind Theorem 2's `+ n·CR·DL` term and the `2·DL`
        // of Eq. 2). We model the fill as landing at the seek's end.
        //
        // Worst-case mode charges the per-method DL the sizing assumes;
        // sampled mode moves the real head over the on-disk layout and
        // draws the rotational delay, so services usually complete early
        // (the buffers stay sized for the worst case).
        let dl = match self.sampled_disk.is_some() {
            false => self.dl_for(n_active),
            true => {
                let disk = self
                    .sampled_disk
                    .as_deref_mut()
                    .expect("checked is_some above");
                let stream = &self.streams[slot];
                Self::ensure_placed(
                    disk,
                    stream.video,
                    self.cfg.params.cr(),
                    self.cfg.video_length,
                );
                let rotation: f64 = self.rng.gen();
                disk.read(stream.video, stream.consumed, Bits::ZERO, rotation)
                    .map(|o| o.latency())
                    .unwrap_or_else(|_| {
                        self.cfg
                            .params
                            .method
                            .worst_disk_latency(&self.cfg.params.disk, n_active)
                    })
            }
        };
        let t_data = now + dl;

        let stream = self.streams.get_mut(slot).expect("caller checked presence");
        let started = stream.viewing_started();
        let old_time = stream.level_at_time();
        let upd = stream.advance_to(t_data, cr);
        if started {
            self.mem.on_materialize(old_time, t_data, upd.consumed);
        }
        if upd.deficit.as_f64() > 64.0 {
            self.obs
                .emit_with(EventKind::Underflow, || Event::Underflow {
                    at: t_data,
                    id,
                    n: n_active,
                    deficit: upd.deficit,
                });
            self.stats.underflows += 1;
            self.m.underflows.inc();
            self.stats.underflow_deficit += upd.deficit;
        }

        let mut read = (size - stream.level()).clamp_non_negative();
        let demand_cap = match stream.remaining_demand(t_data, cr) {
            Some(rem) => (rem - stream.level()).clamp_non_negative(),
            // First fill: the stream will watch `viewing` long.
            None => cr * stream.viewing,
        };
        read = read.min(demand_cap);
        if !started {
            // Even a vanishingly short viewing gets a (tiny) first fill,
            // so every admitted stream starts and eventually departs.
            read = read.max(Bits::new(8.0));
        }

        if read.as_f64() <= 0.0 {
            // Over-provisioned (the allocation shrank below the current
            // level): genuinely nothing to read. Every other stream is
            // refilled every cycle, as the paper's service model requires —
            // the usage-period budgets are equality-tight, so a deferred
            // top-up would push later refills past their dues.
            // `advance_to` re-based (level, level_time), so the stream's
            // due recomputes with different bits: re-arm the due heap.
            self.note_due(slot);
            return;
        }

        let t_done = t_data + read / self.cfg.params.tr();

        // Track the allocation size for buffer-lifecycle events. The
        // update is unconditional (sink or no sink) so instrumented runs
        // stay bit-identical — as is the span-sequence advance, so span
        // ids never depend on when (or whether) a sink was attached.
        let prev_alloc = stream.last_alloc;
        stream.last_alloc = size;
        let trace = stream.trace;
        let svc_seq = stream.span_seq;
        stream.span_seq += 1;
        stream.fill(t_data, read);
        if !started {
            self.obs
                .emit_with(EventKind::BufferAllocated, || Event::BufferAllocated {
                    at: t_data,
                    id,
                    size,
                });
            self.departures
                .push(Reverse((t_data + stream.viewing, id.raw(), slot)));
            self.mem.on_first_fill(t_data);
            // Initial latency ends when the first data reaches memory —
            // the end of the seek, as in Eq. 2's derivation.
            let latency = t_data - stream.arrived;
            self.stats.il_samples.push(IlSample {
                arrived: stream.arrived,
                n_at_arrival: stream.n_at_arrival,
                latency,
            });
        } else if prev_alloc != size {
            self.obs
                .emit_with(EventKind::BufferResized, || Event::BufferResized {
                    at: t_data,
                    id,
                    old_size: prev_alloc,
                    new_size: size,
                });
        }
        self.mem.on_fill(read);
        // Consumption during the transfer cannot underflow (TR > CR and
        // the data is already booked); just materialize it.
        let upd = stream.advance_to(t_done, cr);
        self.mem.on_materialize(t_data, t_done, upd.consumed);
        if let Some(peak) = self.mem.observe(t_done, crf) {
            self.obs
                .emit_with(EventKind::PoolOccupancy, || Event::PoolOccupancy {
                    at: t_done,
                    used: Bits::new(peak),
                    peak: Bits::new(peak),
                    streams: n_active,
                });
        }

        if audit {
            let slot = dl + size / self.cfg.params.tr();
            self.stats.audits.push(AuditRecord {
                at: now,
                window: slot * (n_c + k_c) as f64,
                k_estimated: k_c,
            });
        }

        self.obs
            .emit_with(EventKind::StreamServiced, || Event::StreamServiced {
                at: t_done,
                id,
                n: n_c,
                k: k_c,
                read,
                size,
                duration: t_done - now,
                first_fill: !started,
            });
        self.stats.services += 1;
        self.m.services.inc();
        self.cycle_services += 1;
        if self.obs.tracing() && !trace.is_none() && (self.trace_per_cycle || !started) {
            let root = SpanId::derive(trace, span::SEQ_REQUEST);
            let sp = SpanId::derive(trace, svc_seq);
            self.obs
                .span_start(now, trace, sp, Some(root), SpanKind::Service);
            self.obs
                .span_annotate(t_done, trace, sp, "n", AnnoValue::U64(n_c as u64));
            self.obs
                .span_annotate(t_done, trace, sp, "k", AnnoValue::U64(k_c as u64));
            self.obs.span_annotate(
                t_done,
                trace,
                sp,
                "read_bits",
                AnnoValue::F64(read.as_f64()),
            );
            self.obs.span_annotate(
                t_done,
                trace,
                sp,
                "size_bits",
                AnnoValue::F64(size.as_f64()),
            );
            if !started {
                self.obs
                    .span_annotate(t_done, trace, sp, "first_fill", AnnoValue::U64(1));
            }
            self.obs.span_end(t_done, trace, sp, SpanStatus::Ok);
        }
        self.t = t_done;
        self.note_due(slot);
    }

    /// Pushes the stream's current due time onto the lazy-deletion heap.
    /// Called after every stream-state change that leaves the stream live
    /// (both `service` exits), so the heap always holds an entry whose
    /// stored due recomputes bit-exactly from the stream's current state.
    ///
    /// A push is skipped when the due is bit-identical to the one already
    /// on the heap for this stream (`Stream::noted_due`): an equality-tight
    /// refill often reproduces the previous due exactly, and the earlier
    /// entry still recomputes bit-exactly, so it still answers queries.
    /// Duplicates never change the heap minimum — they only bloat the heap
    /// until the compaction below churns every cycle. Because stale
    /// entries are only ever dropped when their stored due *disagrees*
    /// with the stream, the retained entry stays live until the due
    /// changes — at which point the changed due is pushed here.
    fn note_due(&mut self, slot: SlotId) {
        let cr = self.cfg.params.cr();
        if let Some(s) = self.streams.get_mut(slot) {
            let due = s.due_at(cr);
            if due != s.noted_due {
                s.noted_due = due;
                if let Some(due) = due {
                    self.due_heap.push(Reverse((due, s.id.raw(), slot)));
                }
            }
        }
        // Safety valve: the per-cycle `earliest_due` prune only pops
        // stale entries that reach the top, so pathological push/due
        // patterns could still grow the lazy-deletion heap. Compaction
        // keeps exactly the entries a query would accept (those
        // recomputing bit-exactly), so query results — and the run — are
        // unchanged. With the per-cycle prune this almost never fires.
        if self.due_heap.len() > 4 * (self.streams.len() + 16) {
            let heap = std::mem::take(&mut self.due_heap);
            let mut entries = heap.into_vec();
            let streams = &self.streams;
            entries.retain(|&Reverse((due, _, s))| {
                streams.get(s).is_some_and(|st| st.due_at(cr) == Some(due))
            });
            self.due_heap = BinaryHeap::from(entries);
        }
    }

    /// The next *interesting* time for an idle engine (no stream needs
    /// service right now): the minimum over the caller's next workload
    /// arrival, the earliest departure on the heap, and the deferral
    /// queue's next slot boundary. This is the fast-forward target — the
    /// clock advances across the whole idle stretch in one O(1) jump,
    /// and every quantity consulted is exactly what the legacy hop-by-hop
    /// path consults, so the jump lands on the identical instant.
    fn next_event_horizon(&mut self, next_arrival: Option<Instant>) -> Option<Instant> {
        [
            next_arrival,
            self.earliest_departure(),
            self.pending.front().map(|p| p.eligible_at),
        ]
        .iter()
        .flatten()
        .copied()
        .min()
    }

    // ---------- cycle planning ----------

    /// Rebuilds the next cycle's service order.
    ///
    /// Round-Robin keeps a **persistent ring**: a newcomer bubbled in at
    /// the cursor stays at that ring position forever, so the gap between
    /// its consecutive services is exactly one ring pass — the usage
    /// period its buffer was sized for. (Rebuilding from admission order
    /// would let a bubbled-up stream fall back ~a full extra period and
    /// underflow.)
    ///
    /// Sweep\*/GSS\* re-sort by play position **ascending only** (a
    /// C-SCAN-style one-directional sweep): since all streams advance at
    /// the same `CR`, ranks are stable across periods, keeping each
    /// stream's inter-service gap at one period. An alternating elevator
    /// would flip ranks every pass (first → last), doubling the gap and
    /// violating the sizing budget.
    fn rebuild_order(&mut self) {
        match self.cfg.params.method {
            SchedulingMethod::RoundRobin => {
                // `base_order` is the ring itself.
                let streams = &self.streams;
                self.base_order.retain(|&s| streams.contains(s));
                self.order.clear();
                self.order.extend(self.base_order.iter().copied());
            }
            SchedulingMethod::Sweep => {
                let streams = &self.streams;
                self.base_order.retain(|&s| streams.contains(s));
                self.order.clear();
                self.order.extend(self.base_order.iter().copied());
                self.sort_by_position(0, self.order.len());
            }
            SchedulingMethod::Gss { .. } => {
                // Groups are consecutive chunks of the membership order;
                // each chunk is swept internally.
                let streams = &self.streams;
                self.base_order.retain(|&s| streams.contains(s));
                self.order.clear();
                self.order.extend(self.base_order.iter().copied());
                let g = self
                    .cfg
                    .params
                    .method
                    .effective_group_size(self.order.len());
                let len = self.order.len();
                let mut i = 0;
                while i < len {
                    let end = (i + g).min(len);
                    self.sort_by_position(i, end);
                    i = end;
                }
            }
        }
        self.cursor = self.order.len(); // caller sets 0 when the cycle starts
    }

    /// Re-sorts `order[from..to]` by play position without allocating:
    /// keys are computed once into a reused scratch vector, an O(n)
    /// already-sorted check short-circuits the common case (all streams
    /// advance at the same `CR`, so ranks are stable across consecutive
    /// cycles), and the fallback is a *stable* sort — equal keys keep
    /// their membership order, exactly as the old key-map sort did.
    /// Keys are never NaN (clamped fractions of non-negative values), so
    /// `total_cmp` agrees with the old `partial_cmp` everywhere it was
    /// defined while making the comparator a real total order.
    fn sort_by_position(&mut self, from: usize, to: usize) {
        let mut scratch = std::mem::take(&mut self.sort_scratch);
        scratch.clear();
        scratch.extend(
            self.order[from..to]
                .iter()
                .map(|&slot| (self.position_key(slot), slot)),
        );
        if !scratch.windows(2).all(|w| w[0].0 <= w[1].0) {
            scratch.sort_by(|a, b| a.0.total_cmp(&b.0));
            for (dst, &(_, slot)) in self.order[from..to].iter_mut().zip(scratch.iter()) {
                *dst = slot;
            }
        }
        self.sort_scratch = scratch;
    }

    /// A monotone proxy for the on-disk cylinder of the stream's play
    /// point: videos are laid out contiguously in id order, and the play
    /// point advances with consumption.
    fn position_key(&self, slot: SlotId) -> f64 {
        let s = &self.streams[slot];
        let video_size = self.cfg.params.cr() * self.cfg.video_length;
        let frac = (s.consumed / video_size).clamp(0.0, 1.0);
        s.video.raw() as f64 + frac
    }
}

/// The planner's verdict for the next service cycle.
#[derive(Clone, Copy, Debug)]
struct CyclePlan {
    /// Latest provably safe start: every stream (plus the admissible
    /// insertions) completes before any buffer drains.
    start: Instant,
    /// Idle target after a no-op cycle: one slot before the earliest due.
    fallback: Instant,
    /// How many mid-cycle (BubbleUp / next-group) insertions the start
    /// time budgeted for. Admitting more would push tail refills past
    /// their dues, so `try_admissions` defers the excess to the next
    /// cycle.
    insertion_budget: usize,
}

impl DiskEngine {
    /// When must the next cycle start so every stream's refill completes
    /// before its buffer drains — *even if* the admission-control bound's
    /// worth of new requests bubbles into the cycle? `None` when nobody
    /// needs service.
    ///
    /// The latest provably safe start is `earliest_due − (n + h)·slot`,
    /// where `h` is the admissible-insertion headroom and `slot` bounds
    /// every service in the cycle (next-generation buffer sizes — this is
    /// exactly the budget Theorem 1's sizing guarantees). The static
    /// scheme's headroom is `N − n` (its buffers are sized for the
    /// full-load period, i.e. the Fixed-Stretch cadence); the naive
    /// scheme's is only its own estimate, which is precisely the Fig. 3
    /// flaw — when the load grows faster, its streams underflow.
    fn plan_cycle_start(&mut self) -> Option<CyclePlan> {
        let cr = self.cfg.params.cr();
        let tr = self.cfg.params.tr();
        let n = self.streams.len();
        let big_n = self.cfg.params.max_requests();
        let alpha = self.cfg.params.alpha as usize;
        let dl = self.dl_for(n);

        // Everything cycle-invariant is hoisted ahead of the stream
        // sweep: the insertion headroom, the slot bound, and the
        // allocation size the fallback computation shares (only its
        // `remaining_demand` clamp is per-stream). All of it is pure
        // state queries, so computing it before the sweep instead of
        // between two sweeps changes no bits -- and the plan now runs in
        // one allocation-free pass where it used to fill a fresh `dues`
        // vector and re-look up the size table once per stream.
        let (headroom, size_bound) = match (&mut self.scheme, self.cfg.scheme) {
            (SchemeState::Dynamic(ctl), _) => {
                let h = ctl.admission_bound().saturating_sub(n);
                let k_next = (self.last_k + alpha).min(big_n);
                (
                    (n + h).min(big_n),
                    self.sizer.size((n + h).min(big_n), k_next),
                )
            }
            (SchemeState::Naive(_), _) => {
                let k = self.last_k.max(alpha);
                ((n + k).min(big_n), self.sizer.size(n, k))
            }
            // StaticMaxUse may inflate buffers up to 2×BS(N) (see
            // `service`), so its slot bound doubles.
            (SchemeState::Static, SchemeKind::StaticMaxUse) => (big_n, self.sizer.max_size() * 2.0),
            (SchemeState::Static, _) => (big_n, self.sizer.max_size()),
        };
        let h = headroom.saturating_sub(n);
        let slot = dl + size_bound / tr;
        let k_fb = self.last_k.max(alpha);
        let base_sz = match self.cfg.scheme {
            SchemeKind::Static | SchemeKind::StaticMaxUse => self.sizer.max_size(),
            _ => self.sizer.size(n, k_fb),
        };

        // The stream at service position p completes no later than
        // `start + (p + inserted)·slot` with `inserted ≤ h`; it must be
        // refilled by its own due. Take the tightest constraint.
        let mut start: Option<Instant> = None;
        let mut fallback: Option<Instant> = None;
        let mut eligible: Option<Instant> = None;
        for (idx, &slot_id) in self.order.iter().enumerate() {
            let s = &self.streams[slot_id];
            if !s.viewing_started() {
                // An admitted newcomer (its boundary already passed):
                // service it right away.
                eligible = Some(match eligible {
                    Some(c) => c.min(self.t),
                    None => self.t,
                });
                continue;
            }
            let Some(due) = s.due_at(cr) else { continue };
            let latest = due - slot * (idx + 1 + h) as f64;
            start = Some(match start {
                Some(c) => c.min(latest),
                None => latest,
            });
            // A top-up only becomes non-empty once the level falls below
            // the (possibly shrunken) current allocation — that is
            // `due − size/CR` — and should start no later than one slot
            // before the due. The max of the two is this stream's
            // earliest *useful* service time.
            let sz = base_sz.min(
                s.remaining_demand(self.t, cr)
                    .unwrap_or(self.sizer.max_size()),
            );
            let useful = (due - sz / cr + Seconds::from_millis(1.0)).max(due - slot);
            fallback = Some(match fallback {
                Some(c) => c.min(useful),
                None => useful,
            });
        }
        let Some(mut start) = start else {
            // No refills pending; a waiting newcomer still forces a cycle
            // at its boundary. With no dues to protect, insertions are
            // unconstrained.
            return eligible.map(|e| CyclePlan {
                start: e,
                fallback: e,
                insertion_budget: usize::MAX,
            });
        };
        let mut fb = fallback.expect("at least one due exists");
        if let Some(e) = eligible {
            start = start.min(e);
            fb = fb.min(e);
        }
        Some(CyclePlan {
            start,
            fallback: fb,
            insertion_budget: h,
        })
    }

    fn at_group_boundary(&self) -> bool {
        let g = self
            .cfg
            .params
            .method
            .effective_group_size(self.streams.len());
        g > 0 && self.cursor.is_multiple_of(g)
    }

    /// The *model* service period at the current load: the usage period
    /// `(n + k)·(DL + BS_k(n)/TR)` that the paper's `k_log` window refers
    /// to. (Using the measured cycle duration instead creates a feedback
    /// loop: catch-up cycles run long, which widens the window, which
    /// raises `k_log`, which grows the buffers, which lengthens cycles.)
    fn period_estimate(&mut self) -> Seconds {
        let n = self.streams.len().max(1);
        let k = self.last_k.max(self.cfg.params.alpha as usize);
        if let Some((mn, mk, v)) = self.period_memo {
            if mn == n && mk == k {
                return v;
            }
        }
        let slot = self.dl_for(n) + self.sizer.size(n, k) / self.cfg.params.tr();
        let v = slot * (n + k) as f64;
        self.period_memo = Some((n, k, v));
        v
    }

    /// `worst_disk_latency` at `n` active streams, via the single-entry
    /// memo — the model is a pure function of the fixed disk profile and
    /// `n`, so a hit returns the identical bits a recompute would.
    fn dl_for(&mut self, n: usize) -> Seconds {
        if let Some((mn, v)) = self.dl_memo {
            if mn == n {
                return v;
            }
        }
        let v = self
            .cfg
            .params
            .method
            .worst_disk_latency(&self.cfg.params.disk, n);
        self.dl_memo = Some((n, v));
        v
    }

    // ---------- departures ----------

    fn earliest_departure(&self) -> Option<Instant> {
        self.departures.peek().map(|Reverse((at, _, _))| *at)
    }

    /// The earliest time any stream's buffer drains to zero.
    ///
    /// Lazy-deletion query: the stream's state only changes in `service`
    /// (which re-pushes on both exits) and `depart` (which removes it),
    /// so a heap entry is current iff its stored due recomputes
    /// bit-exactly from the stream it names. Anything else — a departed
    /// stream's entry, or one superseded by a later fill — is popped
    /// here; entries are pushed at most once per service, so the pops
    /// amortize to O(log n) per service against the old O(n) full scan.
    fn earliest_due(&mut self) -> Option<Instant> {
        let cr = self.cfg.params.cr();
        let result = loop {
            let Some(&Reverse((due, _, slot))) = self.due_heap.peek() else {
                break None;
            };
            match self.streams.get(slot) {
                Some(s) if s.due_at(cr) == Some(due) => break Some(due),
                _ => {
                    self.due_heap.pop();
                }
            }
        };
        #[cfg(debug_assertions)]
        {
            let naive = self.streams.values().filter_map(|s| s.due_at(cr)).min();
            debug_assert_eq!(result, naive, "due heap diverged from full scan");
        }
        result
    }

    fn process_due_departures(&mut self) {
        while let Some(&Reverse((at, _, slot))) = self.departures.peek() {
            if at > self.t {
                break;
            }
            self.departures.pop();
            // Entries outlive their stream only if it already departed
            // through another path; `depart` is a no-op then (the slab
            // generation check makes a stale slot miss).
            self.depart(slot, at);
        }
    }

    fn depart(&mut self, slot: SlotId, at: Instant) {
        let cr = self.cfg.params.cr();
        let Some(mut s) = self.streams.remove(slot) else {
            return;
        };
        let id = s.id;
        let started = s.viewing_started();
        let old_time = s.level_at_time();
        let upd = s.advance_to(at, cr);
        if started {
            self.mem
                .on_materialize(old_time, s.level_at_time(), upd.consumed);
        }
        self.note_deficit(id, at, upd.deficit);
        if started {
            self.mem.on_depart(s.level(), s.level_at_time());
        }
        self.obs
            .emit_with(EventKind::BufferFreed, || Event::BufferFreed {
                at,
                id,
                released: s.level(),
            });
        if self.obs.tracing() && !s.trace.is_none() {
            let root = SpanId::derive(s.trace, span::SEQ_REQUEST);
            self.obs.span_end(at, s.trace, root, SpanStatus::Ok);
        }
        self.conc_events.push((at, -1));
        if let SchemeState::Dynamic(ctl) = &mut self.scheme {
            let _ = ctl.depart(id);
        }
    }

    // ---------- finish ----------

    fn finalize(mut self) -> DiskRunStats {
        // A run that ends mid-cycle (drained while a cycle was open)
        // still closes its cycle span.
        if let Some((tr, sp)) = self.cycle_span.take() {
            self.obs.span_end(self.t, tr, sp, SpanStatus::Ok);
        }
        self.conc_events.sort_by_key(|a| a.0);
        let mut n = 0i64;
        let mut series = Vec::with_capacity(self.conc_events.len());
        for (t, delta) in self.conc_events.drain(..) {
            n += i64::from(delta);
            series.push((t, n.max(0) as usize));
        }
        self.stats.concurrency = series;
        self.stats.peak_memory = Bits::new(self.mem.peak);
        self.stats.finished_at = self.t;
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vod_types::DiskId;

    fn arrival(at_secs: f64, viewing_secs: f64) -> Arrival {
        Arrival {
            at: Instant::from_secs(at_secs),
            disk: DiskId::new(0),
            video: VideoId::new(0),
            viewing: Seconds::from_secs(viewing_secs),
        }
    }

    fn run(scheme: SchemeKind, method: SchedulingMethod, arrivals: &[Arrival]) -> DiskRunStats {
        let cfg = EngineConfig::paper(method, scheme);
        let engine = DiskEngine::new(cfg).expect("valid config");
        engine.run(arrivals)
    }

    #[test]
    fn single_request_is_serviced_and_departs() {
        let stats = run(
            SchemeKind::Dynamic,
            SchedulingMethod::RoundRobin,
            &[arrival(10.0, 60.0)],
        );
        assert_eq!(stats.admitted, 1);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.underflows, 0);
        assert_eq!(stats.il_samples.len(), 1);
        let il = stats.il_samples[0].latency;
        assert!(il > Seconds::ZERO);
        assert!(
            il < Seconds::from_secs(1.0),
            "IL {il} too large for an idle disk"
        );
        assert!(stats.services >= 1);
        assert_eq!(stats.max_concurrent(), 1);
        // Viewing 60 s from first data: the run ends a bit after t = 70 s.
        assert!(stats.finished_at.as_secs_f64() >= 69.9);
    }

    #[test]
    fn static_scheme_has_larger_first_fill_latency() {
        let trace = [arrival(5.0, 120.0)];
        let dynamic = run(SchemeKind::Dynamic, SchedulingMethod::RoundRobin, &trace);
        let static_ = run(SchemeKind::Static, SchedulingMethod::RoundRobin, &trace);
        let il_d = dynamic.il_samples[0].latency;
        let il_s = static_.il_samples[0].latency;
        assert!(
            il_s > il_d * 2.0,
            "static {il_s} should dwarf dynamic {il_d}"
        );
    }

    #[test]
    fn no_underflow_for_dynamic_and_static_under_burst() {
        // A burst of 30 arrivals in 10 s, all watching 5 minutes.
        let trace: Vec<Arrival> = (0..30)
            .map(|i| arrival(10.0 + f64::from(i) * 0.33, 300.0))
            .collect();
        for method in SchedulingMethod::paper_methods() {
            for scheme in [SchemeKind::Dynamic, SchemeKind::Static] {
                let stats = run(scheme, method, &trace);
                assert_eq!(stats.underflows, 0, "{scheme} under {method}: underflows");
                assert_eq!(stats.admitted + stats.rejected, 30, "{scheme} {method}");
                assert!(stats.admitted > 0);
            }
        }
    }

    #[test]
    fn dynamic_uses_less_memory_than_static() {
        let trace: Vec<Arrival> = (0..10)
            .map(|i| arrival(f64::from(i) * 5.0, 600.0))
            .collect();
        let dynamic = run(SchemeKind::Dynamic, SchedulingMethod::RoundRobin, &trace);
        let static_ = run(SchemeKind::Static, SchedulingMethod::RoundRobin, &trace);
        assert!(
            dynamic.peak_memory.as_f64() < 0.5 * static_.peak_memory.as_f64(),
            "dynamic {} vs static {}",
            dynamic.peak_memory,
            static_.peak_memory
        );
    }

    #[test]
    fn rejects_past_disk_capacity() {
        // 100 simultaneous eternal viewers on a 79-stream disk.
        let trace: Vec<Arrival> = (0..100)
            .map(|i| arrival(1.0 + f64::from(i) * 1e-3, 3000.0))
            .collect();
        let stats = run(SchemeKind::Static, SchedulingMethod::RoundRobin, &trace);
        assert!(stats.admitted <= 79);
        assert!(stats.rejected >= 21);
        assert!(stats.max_concurrent() <= 79);
        assert_eq!(stats.underflows, 0);
    }

    #[test]
    fn dynamic_defers_bursts_instead_of_underflowing() {
        // 40 arrivals in half a second: Assumption 1 must defer most.
        let trace: Vec<Arrival> = (0..40)
            .map(|i| arrival(1.0 + f64::from(i) * 0.01, 120.0))
            .collect();
        let stats = run(SchemeKind::Dynamic, SchedulingMethod::RoundRobin, &trace);
        eprintln!(
            "PROBE underflows={} deficit={} deferrals={} admitted={} rejected={}",
            stats.underflows,
            stats.underflow_deficit,
            stats.deferrals,
            stats.admitted,
            stats.rejected
        );
        assert_eq!(stats.underflows, 0);
        assert!(stats.deferrals > 0, "burst must trigger deferrals");
        assert_eq!(
            stats.admitted, 40,
            "deferred requests are eventually admitted"
        );
    }

    #[test]
    fn memory_budget_rejects_when_exhausted() {
        let cfg = EngineConfig {
            memory_budget: Some(Bits::from_mebibytes(40.0)),
            ..EngineConfig::paper(SchedulingMethod::RoundRobin, SchemeKind::Static)
        };
        // Static needs ~27 MiB per stream at the margin: 40 MiB admits 1.
        let trace: Vec<Arrival> = (0..5).map(|i| arrival(1.0 + f64::from(i), 300.0)).collect();
        let stats = DiskEngine::new(cfg).expect("valid").run(&trace);
        assert!(stats.admitted <= 2, "admitted {}", stats.admitted);
        assert!(stats.rejected >= 3);
    }

    #[test]
    fn dynamic_fits_more_streams_in_the_same_budget() {
        let budget = Bits::from_mebibytes(60.0);
        let trace: Vec<Arrival> = (0..20)
            .map(|i| arrival(1.0 + f64::from(i) * 2.0, 600.0))
            .collect();
        let mk = |scheme| {
            let cfg = EngineConfig {
                memory_budget: Some(budget),
                ..EngineConfig::paper(SchedulingMethod::RoundRobin, scheme)
            };
            DiskEngine::new(cfg).expect("valid").run(&trace)
        };
        let dynamic = mk(SchemeKind::Dynamic);
        let static_ = mk(SchemeKind::Static);
        assert!(
            dynamic.max_concurrent() > static_.max_concurrent(),
            "dynamic {} vs static {}",
            dynamic.max_concurrent(),
            static_.max_concurrent()
        );
    }

    #[test]
    fn audits_are_recorded_for_estimating_schemes() {
        let trace: Vec<Arrival> = (0..5)
            .map(|i| arrival(1.0 + f64::from(i) * 3.0, 60.0))
            .collect();
        let dynamic = run(SchemeKind::Dynamic, SchedulingMethod::RoundRobin, &trace);
        assert!(!dynamic.audits.is_empty());
        let static_ = run(SchemeKind::Static, SchedulingMethod::RoundRobin, &trace);
        assert!(static_.audits.is_empty());
    }

    #[test]
    fn empty_trace_is_a_clean_noop() {
        let stats = run(SchemeKind::Dynamic, SchedulingMethod::Sweep, &[]);
        assert_eq!(stats.admitted, 0);
        assert_eq!(stats.services, 0);
        assert_eq!(stats.max_concurrent(), 0);
    }

    #[test]
    #[should_panic(expected = "time-sorted")]
    fn unsorted_trace_panics() {
        let trace = [arrival(10.0, 5.0), arrival(1.0, 5.0)];
        let _ = run(SchemeKind::Static, SchedulingMethod::RoundRobin, &trace);
    }

    #[test]
    fn all_methods_service_a_small_town() {
        let trace: Vec<Arrival> = (0..12)
            .map(|i| arrival(f64::from(i) * 7.0, 200.0 + f64::from(i % 5) * 40.0))
            .collect();
        for method in SchedulingMethod::paper_methods() {
            let stats = run(SchemeKind::Dynamic, method, &trace);
            assert_eq!(stats.admitted, 12, "{method}");
            assert_eq!(stats.underflows, 0, "{method}");
            assert_eq!(stats.il_samples.len(), 12, "{method}");
        }
    }

    #[test]
    fn steppable_api_is_bit_identical_to_run() {
        // Bursty enough to exercise deferrals, mid-cycle insertions, and
        // idle jumps; the steppable drive must reproduce `run` bit-exactly
        // (this is the contract the cluster front end builds on).
        let trace: Vec<Arrival> = (0..25)
            .map(|i| arrival(f64::from(i) * 0.35, 120.0 + f64::from(i % 7) * 11.0))
            .collect();
        for method in SchedulingMethod::paper_methods() {
            for scheme in [
                SchemeKind::Dynamic,
                SchemeKind::Static,
                SchemeKind::NaiveDynamic,
            ] {
                let cfg = EngineConfig::paper(method, scheme);
                let by_run = DiskEngine::new(cfg.clone())
                    .expect("paper config is valid")
                    .run(&trace);
                let mut eng = DiskEngine::new(cfg).expect("paper config is valid");
                for a in &trace {
                    eng.advance_to(a.at);
                    eng.offer(a);
                }
                let by_step = eng.finish();
                assert_eq!(by_run, by_step, "{method}/{scheme:?}");
            }
        }
    }

    #[test]
    fn sampled_latency_mode_is_faster_and_still_clean() {
        let trace: Vec<Arrival> = (0..20)
            .map(|i| arrival(f64::from(i) * 5.0, 400.0))
            .collect();
        let worst = run(SchemeKind::Dynamic, SchedulingMethod::Sweep, &trace);
        let mut cfg = EngineConfig::paper(SchedulingMethod::Sweep, SchemeKind::Dynamic);
        cfg.latency_model = vod_disk::LatencyModel::Sampled;
        let sampled = DiskEngine::new(cfg).expect("valid").run(&trace);
        assert_eq!(sampled.underflows, 0, "early completions cannot starve");
        assert_eq!(sampled.admitted, worst.admitted);
        // Actual seeks are far below the worst case, so the sampled run
        // spends less simulated time per service; latencies shrink.
        let w = worst.mean_latency().expect("samples").as_secs_f64();
        let s = sampled.mean_latency().expect("samples").as_secs_f64();
        assert!(s <= w * 1.05, "sampled {s} vs worst-case {w}");
    }

    #[test]
    fn sampled_latency_is_deterministic_per_seed() {
        let trace: Vec<Arrival> = (0..8).map(|i| arrival(f64::from(i) * 4.0, 120.0)).collect();
        let mk = |seed| {
            let mut cfg = EngineConfig::paper(SchedulingMethod::RoundRobin, SchemeKind::Dynamic);
            cfg.latency_model = vod_disk::LatencyModel::Sampled;
            cfg.latency_seed = seed;
            DiskEngine::new(cfg).expect("valid").run(&trace)
        };
        let a = mk(7);
        let b = mk(7);
        let c = mk(8);
        assert_eq!(a.il_samples, b.il_samples);
        // A different rotation draw perturbs the timings.
        assert_ne!(
            a.il_samples, c.il_samples,
            "different seeds should differ (rotation draws)"
        );
    }

    #[test]
    fn recorder_sink_does_not_perturb_the_run() {
        use vod_obs::{EventKind as K, Obs, RecorderSink};
        let trace: Vec<Arrival> = (0..25)
            .map(|i| arrival(1.0 + f64::from(i) * 0.8, 200.0))
            .collect();
        let cfg = EngineConfig::paper(SchedulingMethod::RoundRobin, SchemeKind::Dynamic);
        let plain = DiskEngine::with_observer(cfg.clone(), Obs::null())
            .expect("valid")
            .run(&trace);
        let rec = std::sync::Arc::new(RecorderSink::new());
        let observed = DiskEngine::with_observer(cfg, Obs::new(rec.clone()))
            .expect("valid")
            .run(&trace);
        // Bit-identical measurements, field by field.
        assert_eq!(plain.il_samples, observed.il_samples);
        assert_eq!(plain.audits, observed.audits);
        assert_eq!(plain.concurrency, observed.concurrency);
        assert_eq!(plain.admitted, observed.admitted);
        assert_eq!(plain.rejected, observed.rejected);
        assert_eq!(plain.deferrals, observed.deferrals);
        assert_eq!(plain.services, observed.services);
        assert_eq!(plain.cycles, observed.cycles);
        assert_eq!(plain.underflows, observed.underflows);
        assert_eq!(plain.underflow_deficit, observed.underflow_deficit);
        assert_eq!(plain.peak_memory, observed.peak_memory);
        assert_eq!(plain.finished_at, observed.finished_at);
        // The recorder saw the whole lifecycle, consistently with the
        // aggregate counters.
        let snap = rec.snapshot();
        assert_eq!(snap.counter(K::RequestAdmitted), observed.admitted);
        assert_eq!(snap.counter(K::StreamServiced), observed.services);
        assert_eq!(snap.counter(K::BufferAllocated), observed.admitted);
        assert_eq!(snap.counter(K::BufferFreed), observed.admitted);
        assert_eq!(snap.counter(K::Underflow), observed.underflows);
        assert_eq!(snap.counter(K::RequestDeferred), observed.deferrals);
        assert!(snap.counter(K::CyclePlanned) >= observed.cycles);
        assert!(snap.counter(K::PoolOccupancy) > 0);
        // Every retained event renders as a JSON object line.
        for line in snap.export_jsonl().lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let trace: Vec<Arrival> = (0..8).map(|i| arrival(f64::from(i) * 4.0, 100.0)).collect();
        let a = run(SchemeKind::Dynamic, SchedulingMethod::GSS_PAPER, &trace);
        let b = run(SchemeKind::Dynamic, SchedulingMethod::GSS_PAPER, &trace);
        assert_eq!(a.services, b.services);
        assert_eq!(a.il_samples, b.il_samples);
        assert_eq!(a.peak_memory, b.peak_memory);
    }

    #[test]
    fn metrics_registry_does_not_perturb_the_run() {
        use std::sync::Arc;
        use vod_obs::metrics::{
            Metrics, MetricsRegistry, CTR_ADMITTED, CTR_CYCLES, CTR_DEFERRED, CTR_REJECTED,
            CTR_SERVICES, CTR_UNDERFLOWS, PHASE_ADMISSION, PHASE_CYCLE_PLAN, PHASE_SERVICE,
            PHASE_TABLE_BUILD,
        };
        use vod_obs::Obs;

        // A bursty trace exercising admission deferral, rejection, and
        // departures — the paths the instrumentation touches.
        let mut trace: Vec<Arrival> = (0..50)
            .map(|i| arrival(1.0 + f64::from(i) * 0.05, 150.0))
            .collect();
        trace.extend((0..40).map(|i| arrival(60.0 + f64::from(i) * 0.4, 120.0)));
        let cfg = EngineConfig::paper(SchedulingMethod::RoundRobin, SchemeKind::Dynamic);
        let plain = DiskEngine::with_observer(cfg.clone(), Obs::null())
            .expect("valid")
            .run(&trace);
        let reg = Arc::new(MetricsRegistry::new());
        let obs = Obs::null().with_metrics(Metrics::new(Arc::clone(&reg)));
        let observed = DiskEngine::with_observer(cfg, obs)
            .expect("valid")
            .run(&trace);

        // Bit-identical measurements, field by field (the acceptance
        // criterion: an attached registry must not perturb the run).
        assert_eq!(plain.il_samples, observed.il_samples);
        assert_eq!(plain.audits, observed.audits);
        assert_eq!(plain.concurrency, observed.concurrency);
        assert_eq!(plain.admitted, observed.admitted);
        assert_eq!(plain.rejected, observed.rejected);
        assert_eq!(plain.deferrals, observed.deferrals);
        assert_eq!(plain.services, observed.services);
        assert_eq!(plain.cycles, observed.cycles);
        assert_eq!(plain.underflows, observed.underflows);
        assert_eq!(plain.underflow_deficit, observed.underflow_deficit);
        assert_eq!(plain.peak_memory, observed.peak_memory);
        assert_eq!(plain.finished_at, observed.finished_at);

        // The registry's counters mirror the stats exactly, and every
        // engine phase histogram recorded samples.
        let snap = reg.snapshot();
        assert_eq!(snap.counter(CTR_ADMITTED), Some(observed.admitted));
        assert_eq!(snap.counter(CTR_REJECTED), Some(observed.rejected));
        assert_eq!(snap.counter(CTR_DEFERRED), Some(observed.deferrals));
        assert_eq!(snap.counter(CTR_SERVICES), Some(observed.services));
        assert_eq!(snap.counter(CTR_CYCLES), Some(observed.cycles));
        assert_eq!(snap.counter(CTR_UNDERFLOWS), Some(observed.underflows));
        // The phase histogram counts service *attempts*; a stream found
        // over-provisioned returns early without a disk read, so the
        // sample count can exceed `services` but never undershoot it.
        assert!(snap.histogram(PHASE_SERVICE).expect("registered").count >= observed.services);
        assert_eq!(
            snap.histogram(PHASE_TABLE_BUILD).expect("registered").count,
            2,
            "sizer + admission controller each precompute a table"
        );
        assert!(snap.histogram(PHASE_CYCLE_PLAN).expect("registered").count >= observed.cycles);
        assert!(snap.histogram(PHASE_ADMISSION).expect("registered").count > 0);
    }
}
