//! Discrete-event VOD server simulation.
//!
//! Two simulators reproduce the paper's evaluation (§5):
//!
//! * [`engine::DiskEngine`] — a **buffer-level, single-disk** simulator:
//!   it runs the actual service loop (cycle planning, per-method service
//!   order, BubbleUp insertion, admission control, buffer fills and
//!   use-it-and-toss-it consumption through a real [`vod_buffer`] pool)
//!   and measures initial latency, estimation success, memory occupancy,
//!   deferrals, and — crucially — **buffer underflows**, the invariant the
//!   predict-and-enforce strategy must never violate. Figures 6, 7, 8,
//!   and 11 come from this engine.
//! * [`capacity::CapacitySim`] — an **admission-level, multi-disk**
//!   simulator for the capacity experiments (Fig. 14, Table 5): requests
//!   arrive per the Zipf disk-load model and are admitted against a
//!   shared memory budget using the minimum-memory theorems as the
//!   reservation rule, exactly the quantity the paper's Fig. 13 analysis
//!   uses. (Cross-disk coupling is *only* through memory, so the
//!   buffer-level engine is not needed here; see DESIGN.md.)
//!
//! Both are deterministic given a [`vod_workload::Workload`] trace, so
//! every scheme/method combination replays identical arrivals. Attaching
//! a [`vod_obs`] sink (see [`engine::DiskEngine::with_observer`] and
//! [`capacity::CapacitySim::with_observer`]) never changes a result:
//! events carry already-computed values stamped with simulated time.
//!
//! # The service model
//!
//! The engine services streams in *cycles* (the paper's service periods).
//! Within a cycle the server fills each roster buffer back-to-back; across
//! cycles it idles just long enough that every stream's refill completes
//! by the time its buffer drains (just-in-time scheduling, the behaviour
//! the Fixed-Stretch/Sweep\*/GSS\* family approximates). Fills *top up* to
//! the allocated size, so a stream's occupancy never exceeds its
//! allocation and released memory is immediately reusable — the
//! use-it-and-toss-it policy of §2.1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod capacity;
pub mod engine;
pub mod metrics;
pub mod runner;
pub mod slab;
pub mod stream;

pub use audit::{evaluate_audits, AuditOutcome};
pub use capacity::{CapacityConfig, CapacityResult, CapacitySim};
pub use engine::{DiskEngine, EngineConfig, EvictedStream};
pub use metrics::{DiskRunStats, IlSample};
pub use runner::{
    run_latency_experiment, run_latency_experiment_observed, run_multi_disk, LatencyExperiment,
    LatencyResult, ObservedLatencyResult, RunReport,
};
pub use slab::{Slab, SlotId};
