//! Measurement containers produced by the simulators.

use vod_types::{Bits, Instant, Seconds};

/// One admitted request's measured initial latency.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IlSample {
    /// Arrival time.
    pub arrived: Instant,
    /// Number of streams in service when the request arrived — the x-axis
    /// of Fig. 11.
    pub n_at_arrival: usize,
    /// Initial latency: arrival → first data in memory (includes any
    /// deferral by admission control, footnote 10 of the paper).
    pub latency: Seconds,
}

/// One estimation-audit record: opened at a buffer allocation, scored
/// later against the actual arrivals (Fig. 7/8).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AuditRecord {
    /// Allocation time.
    pub at: Instant,
    /// The usage period the estimate covers.
    pub window: Seconds,
    /// `k_c` — the estimate used for sizing.
    pub k_estimated: usize,
}

/// Everything one buffer-level run measures.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DiskRunStats {
    /// Per-admitted-request latency samples.
    pub il_samples: Vec<IlSample>,
    /// Estimation audit records (empty for non-estimating schemes).
    pub audits: Vec<AuditRecord>,
    /// Concurrency over time: `(t, n)` at every change, in time order.
    pub concurrency: Vec<(Instant, usize)>,
    /// Requests admitted into service.
    pub admitted: u64,
    /// Requests rejected (disk at `N`, or memory reservation failed).
    pub rejected: u64,
    /// Admission attempts deferred by the inertia assumptions.
    pub deferrals: u64,
    /// Buffer services performed (disk reads).
    pub services: u64,
    /// Service cycles (periods) completed.
    pub cycles: u64,
    /// Underflow events (must be 0 for the static and dynamic schemes).
    pub underflows: u64,
    /// Total data deficit across underflows.
    pub underflow_deficit: Bits,
    /// Peak pool occupancy.
    pub peak_memory: Bits,
    /// Wall-clock end of the run (last event processed).
    pub finished_at: Instant,
}

impl DiskRunStats {
    /// Maximum concurrency reached.
    #[must_use]
    pub fn max_concurrent(&self) -> usize {
        self.concurrency.iter().map(|&(_, n)| n).max().unwrap_or(0)
    }

    /// Concurrency at time `t` (step function; 0 before the first event).
    #[must_use]
    pub fn concurrency_at(&self, t: Instant) -> usize {
        match self
            .concurrency
            .partition_point(|&(at, _)| at <= t)
            .checked_sub(1)
        {
            Some(idx) => self.concurrency[idx].1,
            None => 0,
        }
    }

    /// Mean initial latency over all samples.
    #[must_use]
    pub fn mean_latency(&self) -> Option<Seconds> {
        if self.il_samples.is_empty() {
            return None;
        }
        let total: f64 = self
            .il_samples
            .iter()
            .map(|s| s.latency.as_secs_f64())
            .sum();
        Some(Seconds::from_secs(total / self.il_samples.len() as f64))
    }

    /// Mean initial latency bucketed by the number of streams in service
    /// at arrival: index `n` holds `(count, mean)` — the Fig. 11 series.
    #[must_use]
    pub fn latency_by_load(&self, max_n: usize) -> Vec<(usize, Option<Seconds>)> {
        let mut sums = vec![(0usize, 0.0f64); max_n + 1];
        for s in &self.il_samples {
            let n = s.n_at_arrival.min(max_n);
            sums[n].0 += 1;
            sums[n].1 += s.latency.as_secs_f64();
        }
        sums.iter()
            .map(|&(count, total)| {
                if count == 0 {
                    (count, None)
                } else {
                    (count, Some(Seconds::from_secs(total / count as f64)))
                }
            })
            .collect()
    }

    /// The `p`-th latency percentile (`0.0 ..= 1.0`), nearest-rank.
    ///
    /// Nearest-rank uses `⌈p·len⌉` clamped to `[1, len]`; the lower clamp
    /// means `p = 0.0` returns the *minimum* sample (rank 1), not nothing.
    #[must_use]
    pub fn latency_percentile(&self, p: f64) -> Option<Seconds> {
        if self.il_samples.is_empty() || !(0.0..=1.0).contains(&p) {
            return None;
        }
        let mut latencies: Vec<f64> = self
            .il_samples
            .iter()
            .map(|s| s.latency.as_secs_f64())
            .collect();
        // `total_cmp` gives a total order (NaN sorts high) — a comparator
        // falling back to `Ordering::Equal` is not transitive and can
        // leave the vector unsorted.
        latencies.sort_by(|a, b| a.total_cmp(b));
        let rank = ((p * latencies.len() as f64).ceil() as usize).clamp(1, latencies.len());
        Some(Seconds::from_secs(latencies[rank - 1]))
    }

    /// Merges another run's samples into this one (multi-seed averaging).
    pub fn absorb(&mut self, other: DiskRunStats) {
        self.il_samples.extend(other.il_samples);
        self.audits.extend(other.audits);
        self.admitted += other.admitted;
        self.rejected += other.rejected;
        self.deferrals += other.deferrals;
        self.services += other.services;
        self.cycles += other.cycles;
        self.underflows += other.underflows;
        self.underflow_deficit += other.underflow_deficit;
        self.peak_memory = self.peak_memory.max(other.peak_memory);
        self.finished_at = self.finished_at.max(other.finished_at);
        // Concurrency traces from different seeds are not mergeable
        // point-wise; keep the first run's trace.
        if self.concurrency.is_empty() {
            self.concurrency = other.concurrency;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize, secs: f64) -> IlSample {
        IlSample {
            arrived: Instant::ZERO,
            n_at_arrival: n,
            latency: Seconds::from_secs(secs),
        }
    }

    #[test]
    fn mean_latency_averages() {
        let stats = DiskRunStats {
            il_samples: vec![sample(1, 1.0), sample(2, 3.0)],
            ..Default::default()
        };
        assert_eq!(stats.mean_latency(), Some(Seconds::from_secs(2.0)));
        assert_eq!(DiskRunStats::default().mean_latency(), None);
    }

    #[test]
    fn latency_by_load_buckets_correctly() {
        let stats = DiskRunStats {
            il_samples: vec![
                sample(1, 1.0),
                sample(1, 3.0),
                sample(3, 5.0),
                sample(99, 7.0),
            ],
            ..Default::default()
        };
        let by_load = stats.latency_by_load(4);
        assert_eq!(by_load[1], (2, Some(Seconds::from_secs(2.0))));
        assert_eq!(by_load[2], (0, None));
        assert_eq!(by_load[3], (1, Some(Seconds::from_secs(5.0))));
        // Out-of-range buckets clamp to max_n.
        assert_eq!(by_load[4], (1, Some(Seconds::from_secs(7.0))));
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let stats = DiskRunStats {
            il_samples: (1..=10).map(|i| sample(1, f64::from(i))).collect(),
            ..Default::default()
        };
        assert_eq!(stats.latency_percentile(0.5), Some(Seconds::from_secs(5.0)));
        assert_eq!(stats.latency_percentile(0.9), Some(Seconds::from_secs(9.0)));
        assert_eq!(
            stats.latency_percentile(1.0),
            Some(Seconds::from_secs(10.0))
        );
        // Tiny p clamps to the first sample; out-of-range is None.
        assert_eq!(stats.latency_percentile(0.0), Some(Seconds::from_secs(1.0)));
        assert_eq!(stats.latency_percentile(1.5), None);
        assert_eq!(DiskRunStats::default().latency_percentile(0.5), None);
    }

    #[test]
    fn concurrency_lookup_is_a_step_function() {
        let stats = DiskRunStats {
            concurrency: vec![
                (Instant::from_secs(10.0), 1),
                (Instant::from_secs(20.0), 2),
                (Instant::from_secs(30.0), 1),
            ],
            ..Default::default()
        };
        assert_eq!(stats.concurrency_at(Instant::from_secs(5.0)), 0);
        assert_eq!(stats.concurrency_at(Instant::from_secs(10.0)), 1);
        assert_eq!(stats.concurrency_at(Instant::from_secs(25.0)), 2);
        assert_eq!(stats.concurrency_at(Instant::from_secs(99.0)), 1);
        assert_eq!(stats.max_concurrent(), 2);
    }

    #[test]
    fn absorb_accumulates_counters() {
        let mut a = DiskRunStats {
            admitted: 2,
            rejected: 1,
            peak_memory: Bits::new(100.0),
            il_samples: vec![sample(1, 1.0)],
            ..Default::default()
        };
        let b = DiskRunStats {
            admitted: 3,
            underflows: 2,
            peak_memory: Bits::new(300.0),
            il_samples: vec![sample(2, 2.0)],
            concurrency: vec![(Instant::ZERO, 1)],
            ..Default::default()
        };
        a.absorb(b);
        assert_eq!(a.admitted, 5);
        assert_eq!(a.rejected, 1);
        assert_eq!(a.underflows, 2);
        assert_eq!(a.peak_memory, Bits::new(300.0));
        assert_eq!(a.il_samples.len(), 2);
        assert_eq!(a.concurrency.len(), 1);
    }
}
