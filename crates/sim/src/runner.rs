//! Multi-seed experiment runners.
//!
//! The paper runs each simulation five times with different seeds to tame
//! noise (§5.2). [`run_latency_experiment`] reproduces that: it generates
//! one workload per seed, replays each against the configured engine on
//! its own thread, and merges the measurements.

use vod_core::SchemeKind;
use vod_obs::Obs;
use vod_sched::SchedulingMethod;
use vod_types::{Bits, ConfigError, Instant};
use vod_workload::{generate, WorkloadConfig};

use crate::audit::{evaluate_audits, AuditOutcome};
use crate::engine::{DiskEngine, EngineConfig};
use crate::metrics::DiskRunStats;

/// One latency experiment: a scheme × method × workload-skew cell of
/// Fig. 11 (and the source of Figs. 6–8).
#[derive(Clone, Debug)]
pub struct LatencyExperiment {
    /// Engine configuration (method, scheme, `T_log`, memory).
    pub engine: EngineConfig,
    /// Workload configuration (single-disk).
    pub workload: WorkloadConfig,
    /// Seeds; the paper uses five.
    pub seeds: Vec<u64>,
}

impl LatencyExperiment {
    /// The paper's standard cell: single disk, 24-hour Zipf(θ) profile,
    /// five seeds.
    #[must_use]
    pub fn paper(
        method: SchedulingMethod,
        scheme: SchemeKind,
        theta: f64,
        expected_arrivals: f64,
    ) -> Self {
        LatencyExperiment {
            engine: EngineConfig::paper(method, scheme),
            workload: WorkloadConfig::paper_single_disk(theta, expected_arrivals),
            seeds: vec![1, 2, 3, 4, 5],
        }
    }
}

/// Merged results of a latency experiment.
#[derive(Clone, Debug)]
pub struct LatencyResult {
    /// All seeds' measurements merged (latency samples concatenated).
    pub stats: DiskRunStats,
    /// Estimator audit aggregated across seeds.
    pub audit: AuditOutcome,
    /// Number of seeds run.
    pub seeds: usize,
}

/// Per-seed summary captured *before* the multi-seed merge.
///
/// Wall-clock time here is the **host** clock (how long the simulation
/// took to execute) — the only place the observability layer touches wall
/// time; every event timestamp is simulated time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RunReport {
    /// The workload seed this report describes.
    pub seed: u64,
    /// Host wall-clock seconds spent generating and replaying the seed.
    pub wall_clock_secs: f64,
    /// Requests admitted into service.
    pub admitted: u64,
    /// Admission attempts deferred by the inertia assumptions.
    pub deferred: u64,
    /// Requests rejected outright.
    pub rejected: u64,
    /// Underflow events.
    pub underflows: u64,
    /// Buffer services performed.
    pub services: u64,
    /// Service cycles completed.
    pub cycles: u64,
    /// Peak pool occupancy.
    pub peak_memory: Bits,
}

impl RunReport {
    fn from_stats(seed: u64, wall_clock_secs: f64, stats: &DiskRunStats) -> Self {
        RunReport {
            seed,
            wall_clock_secs,
            admitted: stats.admitted,
            deferred: stats.deferrals,
            rejected: stats.rejected,
            underflows: stats.underflows,
            services: stats.services,
            cycles: stats.cycles,
            peak_memory: stats.peak_memory,
        }
    }
}

/// A [`LatencyResult`] plus the per-seed reports the merge would erase.
#[derive(Clone, Debug)]
pub struct ObservedLatencyResult {
    /// The merged measurements (what [`run_latency_experiment`] returns).
    pub result: LatencyResult,
    /// One report per seed, in the experiment's seed order.
    pub reports: Vec<RunReport>,
}

/// Runs the experiment, one thread per seed.
///
/// # Errors
///
/// Returns [`ConfigError`] when the engine or workload configuration is
/// invalid (checked before any thread spawns).
pub fn run_latency_experiment(exp: &LatencyExperiment) -> Result<LatencyResult, ConfigError> {
    // `Obs::from_env` preserves the engine's historical default: stderr
    // tracing when a `VOD_DEBUG_*` variable is set, detached otherwise.
    run_latency_experiment_observed(exp, &|_| Obs::from_env()).map(|o| o.result)
}

/// Runs the experiment with an observer per seed: `observer(seed)` is
/// called once per seed (on the caller's thread) and the returned handle
/// receives that seed's engine events. Pass a shared
/// [`vod_obs::RecorderSink`] behind each handle to aggregate across
/// seeds — its sink is thread-safe.
///
/// # Errors
///
/// Returns [`ConfigError`] when the engine or workload configuration is
/// invalid (checked before any thread spawns).
pub fn run_latency_experiment_observed(
    exp: &LatencyExperiment,
    observer: &(dyn Fn(u64) -> Obs + Sync),
) -> Result<ObservedLatencyResult, ConfigError> {
    exp.workload.validate()?;
    // Engine::with_observer validates; build one up-front to fail fast.
    drop(DiskEngine::with_observer(exp.engine.clone(), Obs::null())?);

    let results: Vec<(DiskRunStats, AuditOutcome, RunReport)> = std::thread::scope(|scope| {
        let handles: Vec<_> = exp
            .seeds
            .iter()
            .map(|&seed| {
                let engine_cfg = exp.engine.clone();
                let wl_cfg = exp.workload.clone();
                let obs = observer(seed);
                scope.spawn(move || {
                    let started = std::time::Instant::now();
                    let gen_timer = obs
                        .metrics()
                        .histogram(vod_obs::metrics::PHASE_WORKLOAD_GEN)
                        .start_timer();
                    let workload =
                        generate(&wl_cfg, seed).expect("workload config validated above");
                    gen_timer.stop();
                    let audit_counter = obs
                        .metrics()
                        .counter(vod_obs::metrics::CTR_AUDIT_VIOLATIONS);
                    let trace_scope = engine_cfg.latency_seed ^ vod_obs::span::mix64(seed);
                    let mut engine = DiskEngine::with_observer(engine_cfg, obs)
                        .expect("engine config validated above");
                    // Each seed thread traces under its own scope, so a
                    // shared sink sees collision-free trace ids.
                    engine.set_trace_scope(trace_scope);
                    let stats = engine.run(&workload.arrivals);
                    let times: Vec<Instant> = workload.arrivals.iter().map(|a| a.at).collect();
                    let audit = evaluate_audits(&stats.audits, &times);
                    audit_counter.add(audit.violations as u64);
                    let report =
                        RunReport::from_stats(seed, started.elapsed().as_secs_f64(), &stats);
                    (stats, audit, report)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("seed thread panicked"))
            .collect()
    });

    let seeds = results.len();
    let mut merged = DiskRunStats::default();
    let mut reports = Vec::with_capacity(seeds);
    let mut est = 0.0;
    let mut act = 0.0;
    let mut succ = 0.0;
    let mut samples = 0usize;
    let mut violations = 0usize;
    for (stats, audit, report) in results {
        // Weight per-seed audit means by their sample counts.
        est += audit.mean_estimated * audit.samples as f64;
        act += audit.mean_actual * audit.samples as f64;
        succ += audit.success_probability * audit.samples as f64;
        samples += audit.samples;
        violations += audit.violations;
        reports.push(report);
        merged.absorb(stats);
    }
    let audit = if samples == 0 {
        AuditOutcome::default()
    } else {
        AuditOutcome {
            samples,
            mean_estimated: est / samples as f64,
            mean_actual: act / samples as f64,
            success_probability: succ / samples as f64,
            violations,
        }
    };
    Ok(ObservedLatencyResult {
        result: LatencyResult {
            stats: merged,
            audit,
            seeds,
        },
        reports,
    })
}

/// Runs the buffer-level engine on every disk of a multi-disk workload —
/// one engine (and thread) per disk, since disks only interact through
/// memory, which the unbounded latency experiments do not constrain.
/// Returns per-disk stats indexed by disk id.
///
/// # Errors
///
/// Returns [`ConfigError`] when the engine configuration is invalid.
pub fn run_multi_disk(
    engine_cfg: &EngineConfig,
    workload: &vod_workload::Workload,
    disks: usize,
) -> Result<Vec<DiskRunStats>, ConfigError> {
    drop(DiskEngine::new(engine_cfg.clone())?);
    let results: Vec<DiskRunStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..disks)
            .map(|d| {
                let cfg = engine_cfg.clone();
                let arrivals = workload.for_disk(vod_types::DiskId::new(d as u64));
                scope.spawn(move || {
                    DiskEngine::new(cfg)
                        .expect("validated above")
                        .run(&arrivals)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("disk thread panicked"))
            .collect()
    });
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vod_types::Seconds;

    /// A small-but-real experiment: 2 seeds, 2 simulated hours, and a
    /// partial load (n ≈ 20 of 79) — the regime where the dynamic scheme's
    /// advantage lives.
    fn small_experiment(scheme: SchemeKind) -> LatencyExperiment {
        let mut exp = LatencyExperiment::paper(SchedulingMethod::RoundRobin, scheme, 1.0, 40.0);
        exp.workload.duration = Seconds::from_hours(2.0);
        exp.workload.peak = Seconds::from_hours(1.0);
        exp.seeds = vec![1, 2];
        exp
    }

    #[test]
    fn runs_multi_seed_and_merges() {
        let res = run_latency_experiment(&small_experiment(SchemeKind::Dynamic))
            .expect("valid experiment");
        assert_eq!(res.seeds, 2);
        assert!(res.stats.admitted > 0);
        assert_eq!(res.stats.underflows, 0);
        assert!(res.audit.samples > 0);
        assert!(res.audit.success_probability > 0.5);
        assert!(!res.stats.il_samples.is_empty());
    }

    #[test]
    fn dynamic_latency_is_below_static_on_average() {
        let dy = run_latency_experiment(&small_experiment(SchemeKind::Dynamic))
            .expect("valid experiment");
        let st = run_latency_experiment(&small_experiment(SchemeKind::Static))
            .expect("valid experiment");
        let dyl = dy.stats.mean_latency().expect("samples").as_secs_f64();
        let stl = st.stats.mean_latency().expect("samples").as_secs_f64();
        assert!(dyl < stl, "dynamic {dyl} >= static {stl}");
    }

    #[test]
    fn multi_disk_runner_covers_every_disk() {
        let mut cfg = vod_workload::WorkloadConfig::paper_ten_disk(0.5, 600.0);
        cfg.duration = Seconds::from_hours(2.0);
        cfg.peak = Seconds::from_minutes(45.0);
        let workload = vod_workload::generate(&cfg, 3).expect("valid workload");
        let engine_cfg = EngineConfig::paper(SchedulingMethod::RoundRobin, SchemeKind::Dynamic);
        let stats = run_multi_disk(&engine_cfg, &workload, 10).expect("valid");
        assert_eq!(stats.len(), 10);
        let handled: u64 = stats.iter().map(|s| s.admitted + s.rejected).sum();
        assert_eq!(handled, workload.len() as u64);
        for (d, s) in stats.iter().enumerate() {
            assert_eq!(s.underflows, 0, "disk {d}");
        }
        // The Zipf skew puts more work on disk 0 than disk 9.
        assert!(stats[0].admitted > stats[9].admitted);
    }

    #[test]
    fn invalid_experiment_is_rejected_up_front() {
        let mut exp = small_experiment(SchemeKind::Dynamic);
        exp.workload.theta = 9.0;
        assert!(run_latency_experiment(&exp).is_err());
    }

    /// Everything in a [`RunReport`] except the host wall-clock, which
    /// is the one legitimately non-deterministic field.
    fn deterministic_part(r: &RunReport) -> (u64, u64, u64, u64, u64, u64, u64, Bits) {
        (
            r.seed,
            r.admitted,
            r.deferred,
            r.rejected,
            r.underflows,
            r.services,
            r.cycles,
            r.peak_memory,
        )
    }

    fn observed_with_seeds(seeds: Vec<u64>) -> ObservedLatencyResult {
        let mut exp = small_experiment(SchemeKind::Dynamic);
        exp.seeds = seeds;
        run_latency_experiment_observed(&exp, &|_| Obs::null()).expect("valid experiment")
    }

    #[test]
    fn per_seed_reports_are_seed_deterministic() {
        let a = observed_with_seeds(vec![1, 2]);
        let b = observed_with_seeds(vec![1, 2]);
        assert_eq!(a.reports.len(), 2);
        assert_eq!(a.reports[0].seed, 1, "reports follow experiment seed order");
        assert_eq!(a.reports[1].seed, 2);
        for (ra, rb) in a.reports.iter().zip(&b.reports) {
            assert_eq!(deterministic_part(ra), deterministic_part(rb));
        }
        // Different seeds genuinely differ (the workloads do).
        let s1 = deterministic_part(&a.reports[0]);
        let s2 = deterministic_part(&a.reports[1]);
        assert_ne!(
            (s1.1, s1.5, s1.6),
            (s2.1, s2.5, s2.6),
            "seeds 1 and 2 produced identical runs"
        );
    }

    #[test]
    fn merge_is_seed_order_independent() {
        let fwd = observed_with_seeds(vec![1, 2]);
        let rev = observed_with_seeds(vec![2, 1]);

        // Per-seed reports match up after aligning on seed.
        let find = |o: &ObservedLatencyResult, seed: u64| {
            deterministic_part(o.reports.iter().find(|r| r.seed == seed).expect("seed ran"))
        };
        assert_eq!(find(&fwd, 1), find(&rev, 1));
        assert_eq!(find(&fwd, 2), find(&rev, 2));

        // Merged counters and order-insensitive statistics agree
        // exactly; the mean only up to float-summation order.
        let (f, r) = (&fwd.result.stats, &rev.result.stats);
        assert_eq!(f.admitted, r.admitted);
        assert_eq!(f.rejected, r.rejected);
        assert_eq!(f.deferrals, r.deferrals);
        assert_eq!(f.services, r.services);
        assert_eq!(f.cycles, r.cycles);
        assert_eq!(f.underflows, r.underflows);
        assert_eq!(f.peak_memory, r.peak_memory);
        assert_eq!(f.il_samples.len(), r.il_samples.len());
        assert_eq!(f.latency_percentile(0.5), r.latency_percentile(0.5));
        assert_eq!(f.latency_percentile(0.95), r.latency_percentile(0.95));
        let (mf, mr) = (
            f.mean_latency().expect("samples").as_secs_f64(),
            r.mean_latency().expect("samples").as_secs_f64(),
        );
        assert!((mf - mr).abs() < 1e-9, "means diverged: {mf} vs {mr}");
        assert_eq!(fwd.result.audit.samples, rev.result.audit.samples);
    }

    #[test]
    fn shared_metrics_registry_aggregates_across_seed_threads() {
        use std::sync::Arc;
        use vod_obs::metrics::{
            Metrics, MetricsRegistry, CTR_ADMITTED, CTR_CYCLES, CTR_SERVICES, PHASE_ADMISSION,
            PHASE_CYCLE_PLAN, PHASE_SERVICE, PHASE_TABLE_BUILD, PHASE_WORKLOAD_GEN,
        };

        let exp = small_experiment(SchemeKind::Dynamic);
        let reg = Arc::new(MetricsRegistry::new());
        let obs = Obs::null().with_metrics(Metrics::new(Arc::clone(&reg)));
        let res =
            run_latency_experiment_observed(&exp, &|_| obs.clone()).expect("valid experiment");
        let snap = reg.snapshot();

        // Counters agree with the merged stats exactly.
        let stats = &res.result.stats;
        assert_eq!(snap.counter(CTR_ADMITTED), Some(stats.admitted));
        assert_eq!(snap.counter(CTR_SERVICES), Some(stats.services));
        assert_eq!(snap.counter(CTR_CYCLES), Some(stats.cycles));

        // Every instrumented phase recorded samples: workload gen once
        // per seed, table build twice per engine (sizer + admission
        // controller), service once per disk read.
        assert_eq!(
            snap.histogram(PHASE_WORKLOAD_GEN)
                .expect("registered")
                .count,
            2
        );
        assert_eq!(
            snap.histogram(PHASE_TABLE_BUILD).expect("registered").count,
            4
        );
        // Service attempts can exceed completed services (early return
        // for over-provisioned streams) but never undershoot them.
        assert!(snap.histogram(PHASE_SERVICE).expect("registered").count >= stats.services);
        assert!(snap.histogram(PHASE_CYCLE_PLAN).expect("registered").count > 0);
        assert!(snap.histogram(PHASE_ADMISSION).expect("registered").count > 0);
    }
}
