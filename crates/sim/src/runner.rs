//! Multi-seed experiment runners.
//!
//! The paper runs each simulation five times with different seeds to tame
//! noise (§5.2). [`run_latency_experiment`] reproduces that: it generates
//! one workload per seed, replays each against the configured engine on
//! its own thread, and merges the measurements.

use vod_core::SchemeKind;
use vod_sched::SchedulingMethod;
use vod_types::{ConfigError, Instant};
use vod_workload::{generate, WorkloadConfig};

use crate::audit::{evaluate_audits, AuditOutcome};
use crate::engine::{DiskEngine, EngineConfig};
use crate::metrics::DiskRunStats;

/// One latency experiment: a scheme × method × workload-skew cell of
/// Fig. 11 (and the source of Figs. 6–8).
#[derive(Clone, Debug)]
pub struct LatencyExperiment {
    /// Engine configuration (method, scheme, `T_log`, memory).
    pub engine: EngineConfig,
    /// Workload configuration (single-disk).
    pub workload: WorkloadConfig,
    /// Seeds; the paper uses five.
    pub seeds: Vec<u64>,
}

impl LatencyExperiment {
    /// The paper's standard cell: single disk, 24-hour Zipf(θ) profile,
    /// five seeds.
    #[must_use]
    pub fn paper(
        method: SchedulingMethod,
        scheme: SchemeKind,
        theta: f64,
        expected_arrivals: f64,
    ) -> Self {
        LatencyExperiment {
            engine: EngineConfig::paper(method, scheme),
            workload: WorkloadConfig::paper_single_disk(theta, expected_arrivals),
            seeds: vec![1, 2, 3, 4, 5],
        }
    }
}

/// Merged results of a latency experiment.
#[derive(Clone, Debug)]
pub struct LatencyResult {
    /// All seeds' measurements merged (latency samples concatenated).
    pub stats: DiskRunStats,
    /// Estimator audit aggregated across seeds.
    pub audit: AuditOutcome,
    /// Number of seeds run.
    pub seeds: usize,
}

/// Runs the experiment, one thread per seed.
///
/// # Errors
///
/// Returns [`ConfigError`] when the engine or workload configuration is
/// invalid (checked before any thread spawns).
pub fn run_latency_experiment(exp: &LatencyExperiment) -> Result<LatencyResult, ConfigError> {
    exp.workload.validate()?;
    // Engine::new validates; build one up-front to fail fast.
    drop(DiskEngine::new(exp.engine.clone())?);

    let results: Vec<(DiskRunStats, AuditOutcome)> = std::thread::scope(|scope| {
        let handles: Vec<_> = exp
            .seeds
            .iter()
            .map(|&seed| {
                let engine_cfg = exp.engine.clone();
                let wl_cfg = exp.workload.clone();
                scope.spawn(move || {
                    let workload =
                        generate(&wl_cfg, seed).expect("workload config validated above");
                    let engine =
                        DiskEngine::new(engine_cfg).expect("engine config validated above");
                    let stats = engine.run(&workload.arrivals);
                    let times: Vec<Instant> = workload.arrivals.iter().map(|a| a.at).collect();
                    let audit = evaluate_audits(&stats.audits, &times);
                    (stats, audit)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("seed thread panicked"))
            .collect()
    });

    let seeds = results.len();
    let mut merged = DiskRunStats::default();
    let mut est = 0.0;
    let mut act = 0.0;
    let mut succ = 0.0;
    let mut samples = 0usize;
    for (stats, audit) in results {
        // Weight per-seed audit means by their sample counts.
        est += audit.mean_estimated * audit.samples as f64;
        act += audit.mean_actual * audit.samples as f64;
        succ += audit.success_probability * audit.samples as f64;
        samples += audit.samples;
        merged.absorb(stats);
    }
    let audit = if samples == 0 {
        AuditOutcome::default()
    } else {
        AuditOutcome {
            samples,
            mean_estimated: est / samples as f64,
            mean_actual: act / samples as f64,
            success_probability: succ / samples as f64,
        }
    };
    Ok(LatencyResult {
        stats: merged,
        audit,
        seeds,
    })
}

/// Runs the buffer-level engine on every disk of a multi-disk workload —
/// one engine (and thread) per disk, since disks only interact through
/// memory, which the unbounded latency experiments do not constrain.
/// Returns per-disk stats indexed by disk id.
///
/// # Errors
///
/// Returns [`ConfigError`] when the engine configuration is invalid.
pub fn run_multi_disk(
    engine_cfg: &EngineConfig,
    workload: &vod_workload::Workload,
    disks: usize,
) -> Result<Vec<DiskRunStats>, ConfigError> {
    drop(DiskEngine::new(engine_cfg.clone())?);
    let results: Vec<DiskRunStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..disks)
            .map(|d| {
                let cfg = engine_cfg.clone();
                let arrivals = workload.for_disk(vod_types::DiskId::new(d as u64));
                scope.spawn(move || {
                    DiskEngine::new(cfg)
                        .expect("validated above")
                        .run(&arrivals)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("disk thread panicked"))
            .collect()
    });
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vod_types::Seconds;

    /// A small-but-real experiment: 2 seeds, 2 simulated hours, and a
    /// partial load (n ≈ 20 of 79) — the regime where the dynamic scheme's
    /// advantage lives.
    fn small_experiment(scheme: SchemeKind) -> LatencyExperiment {
        let mut exp = LatencyExperiment::paper(SchedulingMethod::RoundRobin, scheme, 1.0, 40.0);
        exp.workload.duration = Seconds::from_hours(2.0);
        exp.workload.peak = Seconds::from_hours(1.0);
        exp.seeds = vec![1, 2];
        exp
    }

    #[test]
    fn runs_multi_seed_and_merges() {
        let res = run_latency_experiment(&small_experiment(SchemeKind::Dynamic))
            .expect("valid experiment");
        assert_eq!(res.seeds, 2);
        assert!(res.stats.admitted > 0);
        assert_eq!(res.stats.underflows, 0);
        assert!(res.audit.samples > 0);
        assert!(res.audit.success_probability > 0.5);
        assert!(!res.stats.il_samples.is_empty());
    }

    #[test]
    fn dynamic_latency_is_below_static_on_average() {
        let dy = run_latency_experiment(&small_experiment(SchemeKind::Dynamic))
            .expect("valid experiment");
        let st = run_latency_experiment(&small_experiment(SchemeKind::Static))
            .expect("valid experiment");
        let dyl = dy.stats.mean_latency().expect("samples").as_secs_f64();
        let stl = st.stats.mean_latency().expect("samples").as_secs_f64();
        assert!(dyl < stl, "dynamic {dyl} >= static {stl}");
    }

    #[test]
    fn multi_disk_runner_covers_every_disk() {
        let mut cfg = vod_workload::WorkloadConfig::paper_ten_disk(0.5, 600.0);
        cfg.duration = Seconds::from_hours(2.0);
        cfg.peak = Seconds::from_minutes(45.0);
        let workload = vod_workload::generate(&cfg, 3).expect("valid workload");
        let engine_cfg = EngineConfig::paper(SchedulingMethod::RoundRobin, SchemeKind::Dynamic);
        let stats = run_multi_disk(&engine_cfg, &workload, 10).expect("valid");
        assert_eq!(stats.len(), 10);
        let handled: u64 = stats.iter().map(|s| s.admitted + s.rejected).sum();
        assert_eq!(handled, workload.len() as u64);
        for (d, s) in stats.iter().enumerate() {
            assert_eq!(s.underflows, 0, "disk {d}");
        }
        // The Zipf skew puts more work on disk 0 than disk 9.
        assert!(stats[0].admitted > stats[9].admitted);
    }

    #[test]
    fn invalid_experiment_is_rejected_up_front() {
        let mut exp = small_experiment(SchemeKind::Dynamic);
        exp.workload.theta = 9.0;
        assert!(run_latency_experiment(&exp).is_err());
    }
}
