//! A generational slab: the engine's stream store.
//!
//! The hot loop touches per-stream state on every service, departure, and
//! order rebuild. Keying those accesses by `RequestId` through a `HashMap`
//! pays a SipHash per lookup; a slab keyed by a dense [`SlotId`] makes
//! every access a bounds-checked array index. Slots are recycled through a
//! free list, so memory is O(max concurrent streams), not O(total
//! requests). Each slot carries a generation incremented on removal, so a
//! stale id held by a lazily-cleaned structure (the departure and due
//! heaps) can never alias a recycled slot.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A generational index into a [`Slab`].
///
/// Ordering is (index, generation) lexicographic — arbitrary but total,
/// so ids can ride along in heap entries as tie-breakers.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlotId {
    index: u32,
    gen: u32,
}

impl SlotId {
    /// The slot's position in the slab (stable while occupied).
    #[must_use]
    pub fn index(self) -> usize {
        self.index as usize
    }
}

impl fmt::Debug for SlotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SlotId({}v{})", self.index, self.gen)
    }
}

#[derive(Clone, Debug)]
enum Entry<T> {
    Occupied { gen: u32, value: T },
    Vacant { gen: u32 },
}

/// A slab allocator with generational indices.
#[derive(Clone, Debug)]
pub struct Slab<T> {
    entries: Vec<Entry<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab {
            entries: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }
}

impl<T> Slab<T> {
    /// An empty slab.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of occupied slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no slot is occupied.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Stores `value`, reusing a vacant slot when one exists.
    pub fn insert(&mut self, value: T) -> SlotId {
        self.len += 1;
        if let Some(index) = self.free.pop() {
            let slot = &mut self.entries[index as usize];
            let Entry::Vacant { gen } = *slot else {
                unreachable!("free list points at an occupied slot");
            };
            *slot = Entry::Occupied { gen, value };
            return SlotId { index, gen };
        }
        let index = u32::try_from(self.entries.len()).expect("slab capacity exceeds u32");
        self.entries.push(Entry::Occupied { gen: 0, value });
        SlotId { index, gen: 0 }
    }

    /// Removes and returns the value at `id`; `None` when the id is stale
    /// (already removed, possibly recycled).
    pub fn remove(&mut self, id: SlotId) -> Option<T> {
        let slot = self.entries.get_mut(id.index())?;
        match slot {
            Entry::Occupied { gen, .. } if *gen == id.gen => {
                let next_gen = id.gen.wrapping_add(1);
                let Entry::Occupied { value, .. } =
                    std::mem::replace(slot, Entry::Vacant { gen: next_gen })
                else {
                    unreachable!("matched Occupied above");
                };
                self.free.push(id.index);
                self.len -= 1;
                Some(value)
            }
            _ => None,
        }
    }

    /// The value at `id`, unless the id is stale.
    #[must_use]
    pub fn get(&self, id: SlotId) -> Option<&T> {
        match self.entries.get(id.index()) {
            Some(Entry::Occupied { gen, value }) if *gen == id.gen => Some(value),
            _ => None,
        }
    }

    /// Mutable access to the value at `id`, unless the id is stale.
    pub fn get_mut(&mut self, id: SlotId) -> Option<&mut T> {
        match self.entries.get_mut(id.index()) {
            Some(Entry::Occupied { gen, value }) if *gen == id.gen => Some(value),
            _ => None,
        }
    }

    /// Whether `id` names a live slot.
    #[must_use]
    pub fn contains(&self, id: SlotId) -> bool {
        self.get(id).is_some()
    }

    /// Iterates occupied slots in index order.
    pub fn iter(&self) -> impl Iterator<Item = (SlotId, &T)> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| match e {
                Entry::Occupied { gen, value } => Some((
                    SlotId {
                        index: i as u32,
                        gen: *gen,
                    },
                    value,
                )),
                Entry::Vacant { .. } => None,
            })
    }

    /// Iterates occupied values in index order.
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.iter().map(|(_, v)| v)
    }
}

impl<T> Index<SlotId> for Slab<T> {
    type Output = T;
    fn index(&self, id: SlotId) -> &T {
        self.get(id)
            .unwrap_or_else(|| panic!("stale SlotId {id:?}: slot was freed or generation advanced"))
    }
}

impl<T> IndexMut<SlotId> for Slab<T> {
    fn index_mut(&mut self, id: SlotId) -> &mut T {
        self.get_mut(id)
            .unwrap_or_else(|| panic!("stale SlotId {id:?}: slot was freed or generation advanced"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_eq!(slab.len(), 2);
        assert_eq!(slab[a], "a");
        assert_eq!(slab.get(b), Some(&"b"));
        assert_eq!(slab.remove(a), Some("a"));
        assert_eq!(slab.len(), 1);
        assert_eq!(slab.get(a), None);
        assert!(!slab.contains(a));
        assert!(slab.contains(b));
    }

    #[test]
    fn stale_ids_never_alias_recycled_slots() {
        let mut slab = Slab::new();
        let a = slab.insert(1);
        slab.remove(a);
        let b = slab.insert(2); // reuses the slot, new generation
        assert_eq!(b.index(), a.index());
        assert_ne!(a, b);
        assert_eq!(slab.get(a), None, "stale id must miss");
        assert_eq!(slab.remove(a), None, "stale remove is a no-op");
        assert_eq!(slab[b], 2);
    }

    #[test]
    fn iter_visits_live_slots_in_index_order() {
        let mut slab = Slab::new();
        let a = slab.insert(10);
        let b = slab.insert(20);
        let c = slab.insert(30);
        slab.remove(b);
        let seen: Vec<(usize, i32)> = slab.iter().map(|(id, &v)| (id.index(), v)).collect();
        assert_eq!(seen, vec![(a.index(), 10), (c.index(), 30)]);
        assert_eq!(slab.values().copied().collect::<Vec<_>>(), vec![10, 30]);
    }

    #[test]
    fn double_remove_is_safe() {
        let mut slab = Slab::new();
        let a = slab.insert(7);
        assert_eq!(slab.remove(a), Some(7));
        assert_eq!(slab.remove(a), None);
        assert!(slab.is_empty());
    }
}
