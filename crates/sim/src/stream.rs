//! Per-stream state inside the simulator.

use vod_obs::span::{TraceId, SEQ_FIRST_SERVICE};
use vod_types::{BitRate, Bits, Instant, RequestId, Seconds, VideoId};

/// The simulator's view of one active stream.
///
/// Consumption is *lazy*: the buffer level is only materialized when the
/// stream is touched (serviced, departed, or inspected). Between touches
/// it drains linearly at `CR` from the moment the first data arrived.
#[derive(Clone, Debug)]
pub struct Stream {
    /// The request this stream serves.
    pub id: RequestId,
    /// The requested video.
    pub video: VideoId,
    /// Arrival time of the request (queue time included in latency).
    pub arrived: Instant,
    /// How long the user watches once data starts flowing.
    pub viewing: Seconds,
    /// Completion time of the first fill; `None` until first serviced.
    pub first_data_at: Option<Instant>,
    /// Buffer level at `level_time` (after the last touch).
    level: Bits,
    /// When `level` was last materialized.
    level_time: Instant,
    /// Total data consumed so far (drives the play position / cylinder).
    pub consumed: Bits,
    /// Streams already in service when this request arrived (the Fig. 11
    /// x-coordinate).
    pub n_at_arrival: usize,
    /// Earliest instant the scheduling method may first service this
    /// stream (the BubbleUp slot / Sweep\* period / GSS\* group boundary
    /// following admission).
    pub eligible_at: Instant,
    /// Allocation size used at the last service — observability only
    /// (drives buffer-resize events); never feeds back into scheduling.
    pub last_alloc: Bits,
    /// The lifecycle trace this stream rides (derived at ingest, or
    /// handed in by a cluster front end). Observability only — pure
    /// data-flow, never read by any scheduling decision.
    pub trace: TraceId,
    /// Sequence salt of the stream's *next* service span (starts at
    /// [`SEQ_FIRST_SERVICE`], advances once per disk read).
    /// Observability only.
    pub span_seq: u64,
    /// The due instant the engine last pushed onto its lazy-deletion
    /// heap for this stream (`None` = nothing live pushed). Simulator
    /// bookkeeping so an unchanged due is not re-pushed — duplicates
    /// never alter the heap minimum, they only bloat it. Never read by
    /// any scheduling decision.
    pub noted_due: Option<Instant>,
}

/// What a lazy level update observed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LevelUpdate {
    /// Data consumed since the previous touch (bounded by departure).
    pub consumed: Bits,
    /// Deficit if consumption outran the buffer (underflow), else zero.
    pub deficit: Bits,
}

impl Stream {
    /// A freshly admitted stream with an empty buffer.
    #[must_use]
    pub fn new(id: RequestId, video: VideoId, arrived: Instant, viewing: Seconds) -> Self {
        Stream {
            id,
            video,
            arrived,
            viewing,
            first_data_at: None,
            level: Bits::ZERO,
            level_time: arrived,
            consumed: Bits::ZERO,
            n_at_arrival: 0,
            eligible_at: arrived,
            last_alloc: Bits::ZERO,
            trace: TraceId::NONE,
            span_seq: SEQ_FIRST_SERVICE,
            noted_due: None,
        }
    }

    /// When the level was last materialized.
    #[must_use]
    pub fn level_at_time(&self) -> Instant {
        self.level_time
    }

    /// When this stream departs: `first_data + viewing`, or `None` while
    /// it has not started viewing.
    #[must_use]
    pub fn departs_at(&self) -> Option<Instant> {
        self.first_data_at.map(|t| t + self.viewing)
    }

    /// True once the stream has received its first data.
    #[must_use]
    pub fn viewing_started(&self) -> bool {
        self.first_data_at.is_some()
    }

    /// The initial latency, once known.
    #[must_use]
    pub fn initial_latency(&self) -> Option<Seconds> {
        self.first_data_at.map(|t| t - self.arrived)
    }

    /// Buffer level at `t ≥ level_time` without mutating (may be negative
    /// when an underflow is in progress).
    #[must_use]
    pub fn level_at(&self, t: Instant, cr: BitRate) -> Bits {
        let Some(start) = self.first_data_at else {
            return self.level;
        };
        let from = self.level_time.max(start);
        let until = match self.departs_at() {
            Some(d) => {
                if t < d {
                    t
                } else {
                    d
                }
            }
            None => t,
        };
        if until <= from {
            return self.level;
        }
        self.level - cr * (until - from)
    }

    /// When the buffer drains to zero (the stream's next-service *due*
    /// time). Streams that never started or already departed have no due.
    #[must_use]
    pub fn due_at(&self, cr: BitRate) -> Option<Instant> {
        self.first_data_at?;
        let drain_start = self.level_time;
        let due = drain_start + self.level / cr;
        match self.departs_at() {
            Some(d) if due >= d => None, // provisioned to the end
            _ => Some(due),
        }
    }

    /// Materializes consumption up to `t`, clamping the level at zero and
    /// reporting any deficit. Call before every fill and at departure.
    pub fn advance_to(&mut self, t: Instant, cr: BitRate) -> LevelUpdate {
        let new_level = self.level_at(t, cr);
        let clamped = new_level.clamp_non_negative();
        // Only data that was actually in the buffer counts as consumed
        // (and as released memory); the shortfall is the deficit.
        let consumed_now = (self.level - clamped).clamp_non_negative();
        let deficit = (Bits::ZERO - new_level).clamp_non_negative();
        self.level = clamped;
        self.level_time = self.level_time.max(t);
        self.consumed += consumed_now;
        LevelUpdate {
            consumed: consumed_now,
            deficit,
        }
    }

    /// Adds freshly read data at time `t` (the fill's completion);
    /// consumption must already be materialized to `t`. Marks the first
    /// data arrival when applicable.
    pub fn fill(&mut self, t: Instant, amount: Bits) {
        debug_assert!(self.level_time >= t || self.first_data_at.is_none());
        if self.first_data_at.is_none() {
            self.first_data_at = Some(t);
            self.level_time = t;
        }
        self.level += amount;
    }

    /// Current materialized level (valid at `level_time`).
    #[must_use]
    pub fn level(&self) -> Bits {
        self.level
    }

    /// Data the stream still needs to consume after `t` until departure;
    /// `None` before viewing starts (needs the full first buffer).
    #[must_use]
    pub fn remaining_demand(&self, t: Instant, cr: BitRate) -> Option<Bits> {
        let departs = self.departs_at()?;
        if t >= departs {
            return Some(Bits::ZERO);
        }
        Some(cr * (departs - t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cr() -> BitRate {
        BitRate::from_mbps(1.5)
    }

    fn stream() -> Stream {
        Stream::new(
            RequestId::new(1),
            VideoId::new(0),
            Instant::from_secs(10.0),
            Seconds::from_minutes(30.0),
        )
    }

    #[test]
    fn no_consumption_before_first_fill() {
        let mut s = stream();
        assert_eq!(s.level_at(Instant::from_secs(100.0), cr()), Bits::ZERO);
        let upd = s.advance_to(Instant::from_secs(100.0), cr());
        assert_eq!(upd.consumed, Bits::ZERO);
        assert_eq!(upd.deficit, Bits::ZERO);
        assert!(!s.viewing_started());
        assert!(s.due_at(cr()).is_none());
    }

    #[test]
    fn first_fill_sets_latency_and_departure() {
        let mut s = stream();
        s.advance_to(Instant::from_secs(12.5), cr());
        s.fill(Instant::from_secs(12.5), Bits::from_megabits(3.0));
        assert_eq!(s.initial_latency(), Some(Seconds::from_secs(2.5)));
        assert_eq!(s.departs_at(), Some(Instant::from_secs(12.5 + 30.0 * 60.0)));
    }

    #[test]
    fn level_drains_at_cr() {
        let mut s = stream();
        s.fill(Instant::from_secs(10.0), Bits::from_megabits(3.0));
        // After 1 s, 1.5 Mb consumed.
        let lvl = s.level_at(Instant::from_secs(11.0), cr());
        assert!((lvl.as_megabits() - 1.5).abs() < 1e-12);
        // Due when the 3 Mb run out: 2 s after fill.
        let due = s.due_at(cr()).expect("viewing");
        assert!((due.as_secs_f64() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn advance_accumulates_consumption() {
        let mut s = stream();
        s.fill(Instant::from_secs(10.0), Bits::from_megabits(3.0));
        let upd = s.advance_to(Instant::from_secs(11.0), cr());
        assert!((upd.consumed.as_megabits() - 1.5).abs() < 1e-12);
        assert_eq!(upd.deficit, Bits::ZERO);
        assert!((s.consumed.as_megabits() - 1.5).abs() < 1e-12);
        // Second advance to the same time is a no-op.
        let upd = s.advance_to(Instant::from_secs(11.0), cr());
        assert_eq!(upd.consumed, Bits::ZERO);
    }

    #[test]
    fn underflow_is_reported_and_clamped() {
        let mut s = stream();
        s.fill(Instant::from_secs(10.0), Bits::from_megabits(1.5)); // 1 s of data
        let upd = s.advance_to(Instant::from_secs(13.0), cr());
        // 3 s elapsed, only 1 s of data: 2 s * 1.5 Mbps deficit.
        assert!((upd.deficit.as_megabits() - 3.0).abs() < 1e-12);
        assert!((upd.consumed.as_megabits() - 1.5).abs() < 1e-12);
        assert_eq!(s.level(), Bits::ZERO);
    }

    #[test]
    fn consumption_stops_at_departure() {
        let mut s = Stream::new(
            RequestId::new(2),
            VideoId::new(0),
            Instant::ZERO,
            Seconds::from_secs(2.0), // watches 2 s
        );
        s.fill(Instant::ZERO, Bits::from_megabits(6.0)); // 4 s of data
        let upd = s.advance_to(Instant::from_secs(10.0), cr());
        // Only 2 s consumed (3 Mb); 3 Mb left, no deficit.
        assert!((upd.consumed.as_megabits() - 3.0).abs() < 1e-12);
        assert_eq!(upd.deficit, Bits::ZERO);
        assert!((s.level().as_megabits() - 3.0).abs() < 1e-12);
        // Fully provisioned to departure: no due.
        assert!(s.due_at(cr()).is_none());
    }

    #[test]
    fn remaining_demand_shrinks_to_zero() {
        let mut s = stream();
        assert!(s.remaining_demand(Instant::from_secs(10.0), cr()).is_none());
        s.fill(Instant::from_secs(10.0), Bits::from_megabits(3.0));
        let d0 = s
            .remaining_demand(Instant::from_secs(10.0), cr())
            .expect("viewing");
        assert!((d0.as_megabits() - 1.5 * 1800.0).abs() < 1e-6);
        let d_end = s
            .remaining_demand(Instant::from_secs(10.0 + 1800.0), cr())
            .expect("viewing");
        assert_eq!(d_end, Bits::ZERO);
    }

    #[test]
    fn top_up_after_advance_keeps_level_consistent() {
        let mut s = stream();
        s.fill(Instant::from_secs(10.0), Bits::from_megabits(3.0));
        s.advance_to(Instant::from_secs(11.0), cr());
        s.fill(Instant::from_secs(11.0), Bits::from_megabits(1.5));
        assert!((s.level().as_megabits() - 3.0).abs() < 1e-12);
        let due = s.due_at(cr()).expect("viewing");
        assert!((due.as_secs_f64() - 13.0).abs() < 1e-12);
    }
}
