//! Edge-case coverage for the admission-level capacity simulator.

use vod_core::{SchemeKind, SystemParams};
use vod_sched::SchedulingMethod;
use vod_sim::{CapacityConfig, CapacitySim};
use vod_types::{Bits, DiskId, Instant, Seconds, VideoId};
use vod_workload::{Arrival, Workload};

fn config(scheme: SchemeKind, disks: usize, memory_gb: f64) -> CapacityConfig {
    CapacityConfig {
        params: SystemParams::paper_defaults(SchedulingMethod::RoundRobin),
        scheme,
        disks,
        total_memory: Bits::from_gigabytes(memory_gb),
        t_log: Seconds::from_minutes(40.0),
    }
}

fn arrival(at: f64, disk: u64, viewing: f64) -> Arrival {
    Arrival {
        at: Instant::from_secs(at),
        disk: DiskId::new(disk),
        video: VideoId::new(disk * 6),
        viewing: Seconds::from_secs(viewing),
    }
}

#[test]
fn empty_workload_is_a_noop() {
    let sim = CapacitySim::new(config(SchemeKind::Dynamic, 4, 2.0)).expect("valid");
    let result = sim.run(&Workload::default());
    assert_eq!(result.admitted, 0);
    assert_eq!(result.rejected, 0);
    assert_eq!(result.max_concurrent, 0);
    assert_eq!(result.peak_reserved, Bits::ZERO);
}

#[test]
fn arrivals_to_unknown_disks_are_rejected() {
    let sim = CapacitySim::new(config(SchemeKind::Static, 2, 4.0)).expect("valid");
    let workload = Workload {
        arrivals: vec![arrival(1.0, 0, 60.0), arrival(2.0, 7, 60.0)],
    };
    let result = sim.run(&workload);
    // The disk-7 arrival targets a disk the server does not have: it is
    // rejected, keeping admitted + rejected == workload length.
    assert_eq!(result.admitted, 1);
    assert_eq!(result.rejected, 1);
}

#[test]
fn per_disk_n_limit_binds_even_with_infinite_memory() {
    let sim = CapacitySim::new(config(SchemeKind::Dynamic, 1, 1000.0)).expect("valid");
    let workload = Workload {
        arrivals: (0..120)
            .map(|i| arrival(1.0 + f64::from(i) * 0.01, 0, 3600.0))
            .collect(),
    };
    let result = sim.run(&workload);
    assert_eq!(result.max_concurrent, 79, "Eq. 1's N binds");
    assert_eq!(result.admitted, 79);
    assert_eq!(result.rejected, 41);
}

#[test]
fn departures_release_capacity() {
    let sim = CapacitySim::new(config(SchemeKind::Static, 1, 0.1)).expect("valid");
    // 0.1 GB admits only a couple of static streams; back-to-back short
    // viewings must be admitted serially as slots free.
    let workload = Workload {
        arrivals: (0..6)
            .map(|i| arrival(1.0 + f64::from(i) * 100.0, 0, 50.0))
            .collect(),
    };
    let result = sim.run(&workload);
    assert_eq!(result.admitted, 6, "serial viewings all fit");
    assert!(result.max_concurrent <= 2);
}

#[test]
fn tighter_memory_admits_fewer() {
    let workload = Workload {
        arrivals: (0..200u32)
            .map(|i| arrival(1.0 + f64::from(i) * 0.5, u64::from(i % 4), 7200.0))
            .collect(),
    };
    let mut prev = 0;
    for gb in [0.5, 1.0, 2.0, 4.0] {
        let sim = CapacitySim::new(config(SchemeKind::Static, 4, gb)).expect("valid");
        let got = sim.run(&workload).max_concurrent;
        assert!(got >= prev, "capacity dipped at {gb} GB");
        prev = got;
    }
    assert!(prev > 0);
}

#[test]
fn naive_scheme_reserves_less_than_dynamic() {
    // The naive scheme under-sizes buffers, so its *reservations* are
    // smaller and it appears to fit more streams — the capacity it
    // promises is not actually safe (see the underflow ablation).
    let workload = Workload {
        arrivals: (0..300u32)
            .map(|i| arrival(1.0 + f64::from(i) * 0.2, u64::from(i % 2), 7200.0))
            .collect(),
    };
    let naive = CapacitySim::new(config(SchemeKind::NaiveDynamic, 2, 0.4))
        .expect("valid")
        .run(&workload);
    let dynamic = CapacitySim::new(config(SchemeKind::Dynamic, 2, 0.4))
        .expect("valid")
        .run(&workload);
    assert!(
        naive.max_concurrent >= dynamic.max_concurrent,
        "naive {} vs dynamic {}",
        naive.max_concurrent,
        dynamic.max_concurrent
    );
}
