//! Property tests for the engine's incremental hot-path structures.
//!
//! The engine maintains three incrementally-updated views of its stream
//! set: the generational slab, the lazy-deletion due heap behind
//! `earliest_due`, and the scratch-based position sort. In debug builds
//! the due heap is cross-checked against a full scan on **every** query
//! (`debug_assert_eq!` inside the engine), and the admission
//! controller's min-aggregates against its record table — so driving
//! arbitrary traces through a debug engine *is* the incremental ≡ naive
//! equivalence test. On top of that, runs must stay bit-deterministic:
//! replaying a trace reproduces every stat to the bit, which would catch
//! any order-dependence smuggled in by the slab or the heaps.

use proptest::prelude::*;
use vod_core::SchemeKind;
use vod_sched::SchedulingMethod;
use vod_sim::{DiskEngine, EngineConfig};
use vod_types::{DiskId, Instant, Seconds, VideoId};
use vod_workload::Arrival;

fn trace_strategy() -> impl Strategy<Value = Vec<Arrival>> {
    prop::collection::vec(
        // (arrival offset ms, video, viewing seconds)
        (0u32..600_000, 0u8..12, 1u16..900),
        1..24,
    )
    .prop_map(|raw| {
        let mut arrivals: Vec<Arrival> = raw
            .into_iter()
            .map(|(at_ms, video, viewing_s)| Arrival {
                at: Instant::from_secs(f64::from(at_ms) / 1000.0),
                disk: DiskId::new(0),
                video: VideoId::new(u64::from(video)),
                viewing: Seconds::from_secs(f64::from(viewing_s)),
            })
            .collect();
        arrivals.sort_by(|a, b| a.at.partial_cmp(&b.at).expect("finite times"));
        arrivals
    })
}

fn method_strategy() -> impl Strategy<Value = SchedulingMethod> {
    prop_oneof![
        Just(SchedulingMethod::RoundRobin),
        Just(SchedulingMethod::Sweep),
        Just(SchedulingMethod::Gss { group_size: 4 }),
    ]
}

fn run(method: SchedulingMethod, scheme: SchemeKind, trace: &[Arrival]) -> vod_sim::DiskRunStats {
    let cfg = EngineConfig::paper(method, scheme);
    DiskEngine::new(cfg)
        .expect("paper config is valid")
        .run(trace)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Arbitrary traces drain fully and replay bit-identically under the
    /// dynamic scheme for every scheduling method. Each run also executes
    /// the engine's internal due-heap ≡ full-scan and incremental ≡
    /// record-scan debug assertions once per cycle.
    #[test]
    fn dynamic_runs_are_deterministic_and_heap_consistent(
        trace in trace_strategy(),
        method in method_strategy(),
    ) {
        let a = run(method, SchemeKind::Dynamic, &trace);
        let b = run(method, SchemeKind::Dynamic, &trace);
        // Every admitted stream eventually departed (the run loop only
        // terminates once the roster and queue are empty).
        prop_assert!(a.admitted <= trace.len() as u64);
        prop_assert_eq!(a.cycles, b.cycles);
        prop_assert_eq!(a.services, b.services);
        prop_assert_eq!(a.admitted, b.admitted);
        prop_assert_eq!(a.deferrals, b.deferrals);
        prop_assert_eq!(a.rejected, b.rejected);
        prop_assert_eq!(a.underflows, b.underflows);
        prop_assert_eq!(
            a.peak_memory.as_f64().to_bits(),
            b.peak_memory.as_f64().to_bits(),
            "peak memory must replay bit-identically"
        );
        prop_assert_eq!(
            a.finished_at.as_secs_f64().to_bits(),
            b.finished_at.as_secs_f64().to_bits(),
            "finish time must replay bit-identically"
        );
        prop_assert_eq!(a.il_samples.len(), b.il_samples.len());
    }

    /// The static scheme exercises the same slab/heap/sort machinery with
    /// a different admission path; keep it honest too.
    #[test]
    fn static_runs_are_deterministic_and_heap_consistent(
        trace in trace_strategy(),
        method in method_strategy(),
    ) {
        let a = run(method, SchemeKind::Static, &trace);
        let b = run(method, SchemeKind::Static, &trace);
        prop_assert_eq!(a.cycles, b.cycles);
        prop_assert_eq!(a.services, b.services);
        prop_assert_eq!(a.admitted, b.admitted);
        prop_assert_eq!(a.underflows, b.underflows);
        prop_assert_eq!(
            a.peak_memory.as_f64().to_bits(),
            b.peak_memory.as_f64().to_bits()
        );
        prop_assert_eq!(
            a.finished_at.as_secs_f64().to_bits(),
            b.finished_at.as_secs_f64().to_bits()
        );
    }
}
