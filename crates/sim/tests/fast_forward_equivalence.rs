//! Fast-forward ≡ legacy equivalence for the engine's idle path.
//!
//! With `EngineConfig::fast_forward` on (the default), an idle engine
//! jumps straight to the next interesting instant — the minimum over the
//! next workload arrival, the earliest departure-heap head, and the
//! deferral queue's next slot boundary — computed in one place
//! (`next_event_horizon`). With it off, the engine takes the legacy
//! hop-by-hop candidate scan. The contract (DESIGN §11): the two paths
//! produce **bit-identical** `DiskRunStats` on any trace. These tests pin
//! the edge cases where an event-driven jump could plausibly diverge —
//! arrivals landing exactly on a jumped-to boundary, deferrals draining
//! the instant capacity frees, VCR-rewritten traces (departure + instant
//! re-request), and fully idle runs — plus a proptest sweeping arbitrary
//! traces across every scheduling method × scheme × profile skew θ.

use proptest::prelude::*;
use vod_core::SchemeKind;
use vod_sched::SchedulingMethod;
use vod_sim::{DiskEngine, DiskRunStats, EngineConfig};
use vod_types::{DiskId, Instant, Seconds, VideoId};
use vod_workload::{generate, with_vcr_actions, Arrival, VcrConfig, WorkloadConfig};

fn run_path(
    method: SchedulingMethod,
    scheme: SchemeKind,
    fast_forward: bool,
    trace: &[Arrival],
) -> DiskRunStats {
    let mut cfg = EngineConfig::paper(method, scheme);
    cfg.fast_forward = fast_forward;
    DiskEngine::new(cfg)
        .expect("paper config is valid")
        .run(trace)
}

/// Runs both paths and asserts the stats match bit for bit: structural
/// equality first (readable failures), then the `Debug` rendering, which
/// serialises every float through its shortest round-trip form — two
/// stats with different bits cannot render identically.
fn assert_paths_equivalent(method: SchedulingMethod, scheme: SchemeKind, trace: &[Arrival]) {
    let fast = run_path(method, scheme, true, trace);
    let slow = run_path(method, scheme, false, trace);
    assert_eq!(
        fast,
        slow,
        "stats diverged for {method:?}/{scheme:?} over {} arrivals",
        trace.len()
    );
    assert_eq!(
        format!("{fast:?}"),
        format!("{slow:?}"),
        "debug renderings diverged for {method:?}/{scheme:?}"
    );
}

fn arrival(at_s: f64, video: u64, viewing_s: f64) -> Arrival {
    Arrival {
        at: Instant::from_secs(at_s),
        disk: DiskId::new(0),
        video: VideoId::new(video),
        viewing: Seconds::from_secs(viewing_s),
    }
}

const ALL_METHODS: [SchedulingMethod; 3] = [
    SchedulingMethod::RoundRobin,
    SchedulingMethod::Sweep,
    SchedulingMethod::Gss { group_size: 4 },
];

const ALL_SCHEMES: [SchemeKind; 4] = [
    SchemeKind::Static,
    SchemeKind::StaticMaxUse,
    SchemeKind::NaiveDynamic,
    SchemeKind::Dynamic,
];

/// A run with no arrivals at all fast-forwards end to end: no cycles, no
/// services, and both paths agree on the (empty) stats.
#[test]
fn zero_arrival_run_fast_forwards_end_to_end() {
    for method in ALL_METHODS {
        for scheme in ALL_SCHEMES {
            let fast = run_path(method, scheme, true, &[]);
            assert_eq!(fast.admitted, 0);
            assert_eq!(fast.services, 0);
            assert_paths_equivalent(method, scheme, &[]);
        }
    }
}

/// Long fully-idle gaps between short viewings: the engine spends almost
/// the whole run with zero active streams, jumping gap to gap.
#[test]
fn zero_active_stream_gaps_are_jumped_identically() {
    let trace: Vec<Arrival> = (0u32..6)
        .map(|i| arrival(f64::from(i) * 1800.0, u64::from(i), 20.0))
        .collect();
    for method in ALL_METHODS {
        for scheme in ALL_SCHEMES {
            assert_paths_equivalent(method, scheme, &trace);
        }
    }
}

/// Arrivals landing exactly on the instants the idle engine jumps to —
/// another stream's departure boundary and the first arrival itself. The
/// fast path must not skip past (or double-process) a boundary event.
#[test]
fn arrival_on_a_fast_forwarded_boundary_is_not_skipped() {
    // Stream 0 watches 90 s; streams 1 and 2 arrive exactly at its
    // nominal departure boundary and one cycle-ish later, with a lone
    // stream 3 far out so the engine must jump an idle stretch to it.
    let trace = vec![
        arrival(0.0, 0, 90.0),
        arrival(90.0, 1, 45.0),
        arrival(90.0, 2, 45.0),
        arrival(600.0, 3, 30.0),
    ];
    for method in ALL_METHODS {
        for scheme in ALL_SCHEMES {
            assert_paths_equivalent(method, scheme, &trace);
        }
    }
}

/// A burst beyond the admission bound forces deferrals; the deferred
/// requests drain exactly when departures free capacity. Both paths must
/// agree on every deferral count and admission instant (visible through
/// the initial-latency samples compared above).
#[test]
fn deferral_drain_at_capacity_free_instants_matches() {
    // 100 near-simultaneous arrivals against the paper's N = 79 disk:
    // the tail defers (or rejects) and drains as the 60 s viewings end.
    let mut trace: Vec<Arrival> = (0u32..100)
        .map(|i| arrival(f64::from(i) * 0.05, u64::from(i % 8), 60.0))
        .collect();
    trace.sort_by(|a, b| a.at.partial_cmp(&b.at).expect("finite times"));
    for method in [SchedulingMethod::RoundRobin, SchedulingMethod::Sweep] {
        for scheme in [SchemeKind::Static, SchemeKind::Dynamic] {
            let fast = run_path(method, scheme, true, &trace);
            assert!(
                fast.deferrals > 0 || fast.rejected > 0,
                "burst was meant to overrun admission for {method:?}/{scheme:?}"
            );
            assert_paths_equivalent(method, scheme, &trace);
        }
    }
}

/// VCR actions are modelled as departure + instant re-request: the
/// rewritten trace is dense in arrivals that coincide exactly with
/// departures — the worst case for an event-jump off-by-one.
#[test]
fn vcr_pause_resume_traces_are_equivalent() {
    let mut cfg = WorkloadConfig::paper_single_disk(0.5, 40.0);
    cfg.duration = Seconds::from_hours(2.0);
    cfg.peak = Seconds::from_hours(1.0);
    let base = generate(&cfg, 7).expect("valid workload");
    let vcr = with_vcr_actions(&base, VcrConfig::fidgety(), 11).expect("valid VCR config");
    assert!(
        vcr.arrivals.len() > base.arrivals.len(),
        "VCR rewrite should split viewings"
    );
    for scheme in [SchemeKind::Static, SchemeKind::Dynamic] {
        assert_paths_equivalent(SchedulingMethod::RoundRobin, scheme, &vcr.arrivals);
    }
}

/// The paper's θ grid over generated day profiles: every method × scheme
/// × θ cell replays both paths identically on a quick generated trace.
#[test]
fn generated_theta_grid_is_equivalent() {
    for theta in [0.0, 0.5, 1.0] {
        let mut cfg = WorkloadConfig::paper_single_disk(theta, 30.0);
        cfg.duration = Seconds::from_hours(2.0);
        cfg.peak = Seconds::from_hours(1.0);
        let wl = generate(&cfg, 3).expect("valid workload");
        for method in ALL_METHODS {
            for scheme in ALL_SCHEMES {
                assert_paths_equivalent(method, scheme, &wl.arrivals);
            }
        }
    }
}

fn trace_strategy() -> impl Strategy<Value = Vec<Arrival>> {
    prop::collection::vec(
        // (arrival offset ms, video, viewing seconds)
        (0u32..600_000, 0u8..12, 1u16..900),
        0..24,
    )
    .prop_map(|raw| {
        let mut arrivals: Vec<Arrival> = raw
            .into_iter()
            .map(|(at_ms, video, viewing_s)| Arrival {
                at: Instant::from_secs(f64::from(at_ms) / 1000.0),
                disk: DiskId::new(0),
                video: VideoId::new(u64::from(video)),
                viewing: Seconds::from_secs(f64::from(viewing_s)),
            })
            .collect();
        arrivals.sort_by(|a, b| a.at.partial_cmp(&b.at).expect("finite times"));
        arrivals
    })
}

fn method_strategy() -> impl Strategy<Value = SchedulingMethod> {
    prop_oneof![
        Just(SchedulingMethod::RoundRobin),
        Just(SchedulingMethod::Sweep),
        Just(SchedulingMethod::Gss { group_size: 4 }),
    ]
}

fn scheme_strategy() -> impl Strategy<Value = SchemeKind> {
    prop_oneof![
        Just(SchemeKind::Static),
        Just(SchemeKind::StaticMaxUse),
        Just(SchemeKind::NaiveDynamic),
        Just(SchemeKind::Dynamic),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary traces, every method × scheme: the fast-forward and
    /// legacy paths replay to bit-identical stats.
    #[test]
    fn fast_forward_matches_legacy_on_arbitrary_traces(
        trace in trace_strategy(),
        method in method_strategy(),
        scheme in scheme_strategy(),
    ) {
        let fast = run_path(method, scheme, true, &trace);
        let slow = run_path(method, scheme, false, &trace);
        prop_assert_eq!(&fast, &slow, "stats diverged for {:?}/{:?}", method, scheme);
        prop_assert_eq!(format!("{fast:?}"), format!("{slow:?}"));
    }
}
