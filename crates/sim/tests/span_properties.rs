//! Property tests for the engine's span lifecycles.
//!
//! Tracing rides the same `Sink` pipeline as the counter events, so two
//! things must hold under arbitrary traces, for every scheduling method
//! × buffer scheme: (1) span lifecycles balance — every `span_start`
//! the engine emits is closed by exactly one `span_end` on the same
//! `(trace, span)` id, annotations never reference an id that was never
//! opened, and admission spans ending `admitted` agree with the run's
//! admitted count; (2) observation is non-perturbing — the
//! `DiskRunStats` of a fully traced run equal those of a detached run
//! bit for bit.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;
use vod_core::SchemeKind;
use vod_obs::{Event, Obs, RecorderSink, SpanStatus};
use vod_sched::SchedulingMethod;
use vod_sim::{DiskEngine, EngineConfig};
use vod_types::{DiskId, Instant, Seconds, VideoId};
use vod_workload::Arrival;

fn trace_strategy() -> impl Strategy<Value = Vec<Arrival>> {
    prop::collection::vec(
        // (arrival offset ms, video, viewing seconds)
        (0u32..600_000, 0u8..12, 1u16..900),
        1..24,
    )
    .prop_map(|raw| {
        let mut arrivals: Vec<Arrival> = raw
            .into_iter()
            .map(|(at_ms, video, viewing_s)| Arrival {
                at: Instant::from_secs(f64::from(at_ms) / 1000.0),
                disk: DiskId::new(0),
                video: VideoId::new(u64::from(video)),
                viewing: Seconds::from_secs(f64::from(viewing_s)),
            })
            .collect();
        arrivals.sort_by(|a, b| a.at.partial_cmp(&b.at).expect("finite times"));
        arrivals
    })
}

fn method_strategy() -> impl Strategy<Value = SchedulingMethod> {
    prop_oneof![
        Just(SchedulingMethod::RoundRobin),
        Just(SchedulingMethod::Sweep),
        Just(SchedulingMethod::Gss { group_size: 4 }),
    ]
}

fn scheme_strategy() -> impl Strategy<Value = SchemeKind> {
    prop_oneof![
        Just(SchemeKind::Static),
        Just(SchemeKind::StaticMaxUse),
        Just(SchemeKind::NaiveDynamic),
        Just(SchemeKind::Dynamic),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every `Span::start` has exactly one matching `end` (and no end or
    /// annotation orphans), across methods × schemes, and the admission
    /// spans reconcile with the admitted count.
    #[test]
    fn span_lifecycles_balance_across_methods_and_schemes(
        trace in trace_strategy(),
        method in method_strategy(),
        scheme in scheme_strategy(),
    ) {
        let recorder = Arc::new(RecorderSink::new());
        let cfg = EngineConfig::paper(method, scheme);
        let stats = DiskEngine::with_observer(cfg, Obs::new(Arc::clone(&recorder) as Arc<dyn vod_obs::Sink>))
            .expect("paper config is valid")
            .run(&trace);

        let snap = recorder.snapshot();
        prop_assert_eq!(snap.spans_dropped(), 0, "ring must hold the whole run");

        // (trace, span) -> (starts, ends); annotations checked against
        // the open set as we replay the event order.
        let mut balance: HashMap<(u64, u64), (u64, u64)> = HashMap::new();
        let mut admitted_spans = 0u64;
        for e in snap.events() {
            match *e {
                Event::SpanStart { trace, span, .. } => {
                    balance.entry((trace.raw(), span.raw())).or_insert((0, 0)).0 += 1;
                }
                Event::SpanAnnotate { trace, span, .. } => {
                    let seen = balance.get(&(trace.raw(), span.raw()));
                    prop_assert!(
                        seen.is_some_and(|&(s, _)| s > 0),
                        "annotation on a span that never started"
                    );
                }
                Event::SpanEnd { trace, span, status, .. } => {
                    let slot = balance.entry((trace.raw(), span.raw())).or_insert((0, 0));
                    slot.1 += 1;
                    if status == SpanStatus::Admitted {
                        admitted_spans += 1;
                    }
                }
                _ => {}
            }
        }
        for (&(t, s), &(starts, ends)) in &balance {
            prop_assert_eq!(
                starts, ends,
                "span {:016x}/{:016x}: {} starts vs {} ends", t, s, starts, ends
            );
            prop_assert_eq!(starts, 1, "span ids are minted once");
        }
        prop_assert_eq!(
            admitted_spans, stats.admitted,
            "exactly one admission span per admitted stream"
        );
    }

    /// Tracing is non-perturbing: a fully recorded run and a detached run
    /// produce bit-identical `DiskRunStats`.
    #[test]
    fn tracing_does_not_perturb_the_run(
        trace in trace_strategy(),
        method in method_strategy(),
        scheme in scheme_strategy(),
    ) {
        let cfg = EngineConfig::paper(method, scheme);
        let bare = DiskEngine::new(cfg.clone())
            .expect("paper config is valid")
            .run(&trace);
        let recorder = Arc::new(RecorderSink::new());
        let traced = DiskEngine::with_observer(cfg, Obs::new(recorder as Arc<dyn vod_obs::Sink>))
            .expect("paper config is valid")
            .run(&trace);
        prop_assert_eq!(bare, traced);
    }
}
