//! Property tests on the stream model: conservation of data through
//! arbitrary fill/advance interleavings.

use proptest::prelude::*;
use vod_sim::stream::Stream;
use vod_types::{BitRate, Bits, Instant, RequestId, Seconds, VideoId};

#[derive(Debug, Clone, Copy)]
enum Op {
    /// Advance the clock by this many milliseconds, materializing.
    Advance(u32),
    /// Fill this many bits at the current time.
    Fill(u32),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (1u32..120_000).prop_map(Op::Advance),
            (1u32..80_000_000).prop_map(Op::Fill),
        ],
        1..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn data_is_conserved(ops in ops(), viewing_secs in 1.0f64..7200.0) {
        let cr = BitRate::from_mbps(1.5);
        let mut s = Stream::new(
            RequestId::new(0),
            VideoId::new(0),
            Instant::ZERO,
            Seconds::from_secs(viewing_secs),
        );
        let mut t = Instant::ZERO;
        let mut filled = 0.0f64;
        let mut consumed = 0.0f64;
        let mut deficit = 0.0f64;
        for op in ops {
            match op {
                Op::Advance(ms) => {
                    t += Seconds::from_millis(f64::from(ms));
                    let upd = s.advance_to(t, cr);
                    consumed += upd.consumed.as_f64();
                    deficit += upd.deficit.as_f64();
                }
                Op::Fill(bits) => {
                    s.advance_to(t, cr);
                    // Re-materialize to t (idempotent) then add data.
                    s.fill(t, Bits::new(f64::from(bits)));
                    filled += f64::from(bits);
                }
            }
            // Level is never negative, and never exceeds what was filled.
            prop_assert!(s.level().as_f64() >= 0.0);
            prop_assert!(s.level().as_f64() <= filled + 1e-6);
        }
        let final_upd = s.advance_to(t + Seconds::from_hours(10.0), cr);
        consumed += final_upd.consumed.as_f64();
        // Conservation: everything filled is either consumed or left over.
        let leftover = s.level().as_f64();
        prop_assert!(
            (filled - consumed - leftover).abs() < 1e-6 * filled.max(1.0),
            "filled {filled}, consumed {consumed}, leftover {leftover}"
        );
        // A viewer never consumes more than its viewing allowance.
        let allowance = 1.5e6 * viewing_secs;
        prop_assert!(consumed <= allowance + 1e-6 * allowance);
        // Deficit only accrues while viewing, and is non-negative.
        prop_assert!(deficit >= 0.0);
    }

    #[test]
    fn due_time_is_consistent_with_level(
        fill_mbits in 0.1f64..100.0,
        elapsed in 0.0f64..100.0,
    ) {
        let cr = BitRate::from_mbps(1.5);
        let mut s = Stream::new(
            RequestId::new(0),
            VideoId::new(0),
            Instant::ZERO,
            Seconds::from_hours(10.0), // effectively endless viewing
        );
        s.fill(Instant::ZERO, Bits::from_megabits(fill_mbits));
        let t = Instant::from_secs(elapsed);
        let level = s.level_at(t, cr);
        if let Some(due) = s.due_at(cr) {
            // At `due`, the level is exactly zero.
            let at_due = s.level_at(due, cr).as_f64();
            prop_assert!(at_due.abs() < 1.0, "level at due = {at_due}");
            // Before the due, it is positive.
            if t < due {
                prop_assert!(level.as_f64() > -1.0);
            }
        }
    }
}
