//! Error types shared across the workspace.

use core::fmt;

use crate::ids::RequestId;
use crate::units::Bits;

/// A configuration that cannot describe a feasible VOD system.
#[derive(Clone, Debug, PartialEq)]
pub struct ConfigError {
    /// Name of the offending parameter.
    pub parameter: &'static str,
    /// Human-readable description of the constraint that was violated.
    pub reason: String,
}

impl ConfigError {
    /// Constructs a configuration error.
    #[must_use]
    pub fn new(parameter: &'static str, reason: impl Into<String>) -> Self {
        Self {
            parameter,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid configuration `{}`: {}",
            self.parameter, self.reason
        )
    }
}

impl std::error::Error for ConfigError {}

/// Top-level error type of the VOD library.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum VodError {
    /// The system configuration is infeasible (e.g. `TR <= CR`, zero disks).
    Config(ConfigError),
    /// The disk is already servicing its maximum number `N` of streams.
    DiskSaturated {
        /// Maximum number of concurrent streams the disk supports.
        max_requests: usize,
    },
    /// The buffer pool cannot satisfy an allocation.
    OutOfMemory {
        /// Additional footprint the operation needed (after any page
        /// rounding) — under page granularity this can exceed the data
        /// amount the caller asked to store.
        requested: Bits,
        /// Amount currently free.
        available: Bits,
    },
    /// A stream consumed past the data available in its buffer: the
    /// continuity guarantee was broken. If this surfaces while the
    /// predict-and-enforce assumptions are enforced, it is a bug.
    BufferUnderflow {
        /// The starved request.
        request: RequestId,
        /// How many bits past the available data the stream consumed.
        deficit: Bits,
    },
    /// An operation referenced a request unknown to the server
    /// (never admitted, or already departed).
    UnknownRequest(RequestId),
    /// An operation would violate the inertia assumptions that the
    /// dynamic scheme enforces at runtime (the request must be deferred).
    AdmissionDeferred {
        /// The deferred request.
        request: RequestId,
    },
}

impl fmt::Display for VodError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VodError::Config(e) => write!(f, "{e}"),
            VodError::DiskSaturated { max_requests } => {
                write!(
                    f,
                    "disk saturated: already servicing N={max_requests} streams"
                )
            }
            VodError::OutOfMemory {
                requested,
                available,
            } => write!(
                f,
                "buffer pool exhausted: requested {requested}, only {available} free"
            ),
            VodError::BufferUnderflow { request, deficit } => write!(
                f,
                "buffer underflow for {request}: consumed {deficit} past available data"
            ),
            VodError::UnknownRequest(id) => write!(f, "unknown request {id}"),
            VodError::AdmissionDeferred { request } => write!(
                f,
                "admission of {request} deferred to preserve inertia assumptions"
            ),
        }
    }
}

impl std::error::Error for VodError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VodError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for VodError {
    fn from(e: ConfigError) -> Self {
        VodError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = ConfigError::new("consumption_rate", "must be positive");
        assert_eq!(
            e.to_string(),
            "invalid configuration `consumption_rate`: must be positive"
        );

        let e = VodError::DiskSaturated { max_requests: 79 };
        assert!(e.to_string().contains("N=79"));

        let e = VodError::OutOfMemory {
            requested: Bits::from_megabits(10.0),
            available: Bits::from_megabits(1.0),
        };
        assert!(e.to_string().contains("exhausted"));

        let e = VodError::BufferUnderflow {
            request: RequestId::new(4),
            deficit: Bits::new(100.0),
        };
        assert!(e.to_string().contains("R4"));

        assert!(VodError::UnknownRequest(RequestId::new(1))
            .to_string()
            .contains("R1"));
        assert!(VodError::AdmissionDeferred {
            request: RequestId::new(2)
        }
        .to_string()
        .contains("deferred"));
    }

    #[test]
    fn config_error_converts_to_vod_error_with_source() {
        use std::error::Error as _;
        let e: VodError = ConfigError::new("x", "bad").into();
        assert!(matches!(e, VodError::Config(_)));
        assert!(e.source().is_some());
    }
}
