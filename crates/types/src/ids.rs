//! Opaque identifiers for the entities of a VOD system.

use core::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
        #[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
        pub struct $name(u64);

        impl $name {
            /// Constructs an identifier from its raw index.
            #[must_use]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// The raw index.
            #[must_use]
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// The raw index as a `usize`, for direct slice indexing.
            #[must_use]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }
    };
}

id_type!(
    /// Identifies one user request (one stream). VCR operations such as
    /// fast-forward are modelled as *new* requests, following the paper.
    RequestId,
    "R"
);

id_type!(
    /// Identifies a video title in the catalog.
    VideoId,
    "V"
);

id_type!(
    /// Identifies one disk in a (possibly multi-disk) VOD server.
    DiskId,
    "D"
);

/// A monotonically increasing generator for [`RequestId`]s.
#[derive(Debug, Default, Clone)]
pub struct RequestIdGen {
    next: u64,
}

impl RequestIdGen {
    /// Creates a generator starting at `R0`.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the next fresh identifier.
    pub fn next_id(&mut self) -> RequestId {
        let id = RequestId::new(self.next);
        self.next += 1;
        id
    }

    /// Number of identifiers handed out so far.
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(RequestId::new(3).to_string(), "R3");
        assert_eq!(VideoId::new(7).to_string(), "V7");
        assert_eq!(DiskId::new(0).to_string(), "D0");
    }

    #[test]
    fn ids_are_ordered_by_raw_value() {
        assert!(RequestId::new(1) < RequestId::new(2));
        assert_eq!(DiskId::from(5).raw(), 5);
        assert_eq!(DiskId::from(5).index(), 5);
    }

    #[test]
    fn generator_is_monotone_and_dense() {
        let mut gen = RequestIdGen::new();
        let a = gen.next_id();
        let b = gen.next_id();
        assert_eq!(a, RequestId::new(0));
        assert_eq!(b, RequestId::new(1));
        assert_eq!(gen.issued(), 2);
    }
}
