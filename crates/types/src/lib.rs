//! Shared foundation types for the VOD dynamic-buffer-allocation library.
//!
//! This crate sits at the bottom of the workspace dependency graph and
//! defines the vocabulary every other crate speaks:
//!
//! * [`units`] — strongly typed physical quantities: [`Bits`], [`BitRate`],
//!   and [`Seconds`], plus the absolute simulation timestamp [`Instant`].
//!   The paper's analysis (Lee et al., TKDE 2003) is carried out in
//!   continuous quantities — bits, bits/second, seconds — so these are thin
//!   `f64` newtypes with the dimensional arithmetic one expects
//!   (`Bits / BitRate = Seconds`, `BitRate * Seconds = Bits`, …).
//! * [`ids`] — opaque identifiers for user requests, videos, and disks.
//! * [`error`] — the shared [`VodError`] hierarchy.
//!
//! # Conventions
//!
//! * All data sizes are **bits**, matching the paper's `TR`/`CR` definitions
//!   (Table 1 of the paper gives both in bits/sec).
//! * All durations are **seconds**.
//! * `f64` is used throughout: the closed forms of the paper are products
//!   and sums of at most ~80 terms, far inside `f64`'s exact range for the
//!   magnitudes involved (≲ 2⁴⁰ bits).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod ids;
pub mod units;

pub use error::{ConfigError, VodError};
pub use ids::{DiskId, RequestId, VideoId};
pub use units::{BitRate, Bits, Instant, Seconds};
