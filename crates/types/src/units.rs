//! Dimensional newtypes: [`Bits`], [`BitRate`], [`Seconds`], [`Instant`].
//!
//! The arithmetic mirrors physical dimensions:
//!
//! ```
//! use vod_types::units::{BitRate, Bits, Instant, Seconds};
//!
//! let buffer = Bits::from_megabits(12.0);
//! let rate = BitRate::from_mbps(1.5);
//! let drain_time: Seconds = buffer / rate;          // bits / (bits/s) = s
//! assert!((drain_time.as_secs_f64() - 8.0).abs() < 1e-12);
//!
//! let refill: Bits = rate * Seconds::from_secs(4.0); // (bits/s) * s = bits
//! assert_eq!(refill, Bits::from_megabits(6.0));
//!
//! let t0 = Instant::ZERO;
//! let t1 = t0 + Seconds::from_secs(2.5);
//! assert_eq!(t1 - t0, Seconds::from_secs(2.5));
//! ```

use core::cmp::Ordering;
use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! forward_partial_ord_total {
    ($ty:ident) => {
        impl Eq for $ty {}

        #[allow(clippy::derive_ord_xor_partial_ord)]
        impl Ord for $ty {
            fn cmp(&self, other: &Self) -> Ordering {
                // All constructors go through finite `f64`s; NaN would be a
                // logic error upstream, so treat it as equal-last rather
                // than panicking in comparison-heavy simulator code.
                self.partial_cmp(other).unwrap_or(Ordering::Equal)
            }
        }
    };
}

/// An amount of data, in bits.
///
/// The paper expresses every size (`BS`, memory requirements) in bits
/// because the disk transfer rate `TR` and the stream consumption rate `CR`
/// are given in bits/second. Use the `from_*`/`as_*` helpers to convert to
/// human units.
#[derive(Clone, Copy, Debug, Default, PartialEq, PartialOrd)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Bits(f64);

forward_partial_ord_total!(Bits);

impl Bits {
    /// Zero bits.
    pub const ZERO: Bits = Bits(0.0);

    /// Constructs from a raw bit count.
    #[must_use]
    pub const fn new(bits: f64) -> Self {
        Bits(bits)
    }

    /// Constructs from megabits (10⁶ bits).
    #[must_use]
    pub fn from_megabits(mb: f64) -> Self {
        Bits(mb * 1.0e6)
    }

    /// Constructs from bytes.
    #[must_use]
    pub fn from_bytes(bytes: f64) -> Self {
        Bits(bytes * 8.0)
    }

    /// Constructs from mebibytes (2²⁰ bytes).
    #[must_use]
    pub fn from_mebibytes(mib: f64) -> Self {
        Bits::from_bytes(mib * 1024.0 * 1024.0)
    }

    /// Constructs from gibibytes (2³⁰ bytes).
    #[must_use]
    pub fn from_gibibytes(gib: f64) -> Self {
        Bits::from_bytes(gib * 1024.0 * 1024.0 * 1024.0)
    }

    /// Constructs from decimal gigabytes (10⁹ bytes) — the unit disk
    /// vendors (and the paper's Table 3) quote capacities in.
    #[must_use]
    pub fn from_gigabytes(gb: f64) -> Self {
        Bits::from_bytes(gb * 1.0e9)
    }

    /// Raw bit count.
    #[must_use]
    pub const fn as_f64(self) -> f64 {
        self.0
    }

    /// Value in megabits (10⁶ bits).
    #[must_use]
    pub fn as_megabits(self) -> f64 {
        self.0 / 1.0e6
    }

    /// Value in bytes.
    #[must_use]
    pub fn as_bytes(self) -> f64 {
        self.0 / 8.0
    }

    /// Value in mebibytes (2²⁰ bytes).
    #[must_use]
    pub fn as_mebibytes(self) -> f64 {
        self.as_bytes() / (1024.0 * 1024.0)
    }

    /// Value in gibibytes (2³⁰ bytes).
    #[must_use]
    pub fn as_gibibytes(self) -> f64 {
        self.as_bytes() / (1024.0 * 1024.0 * 1024.0)
    }

    /// Value in decimal gigabytes (10⁹ bytes).
    #[must_use]
    pub fn as_gigabytes(self) -> f64 {
        self.as_bytes() / 1.0e9
    }

    /// True when the amount is (exactly) zero.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// True for finite, non-negative amounts — every legal data size.
    #[must_use]
    pub fn is_valid_size(self) -> bool {
        self.0.is_finite() && self.0 >= 0.0
    }

    /// Clamps tiny negative values (float noise from accounting) to zero.
    #[must_use]
    pub fn clamp_non_negative(self) -> Self {
        Bits(self.0.max(0.0))
    }

    /// The smaller of two amounts.
    #[must_use]
    pub fn min(self, other: Self) -> Self {
        Bits(self.0.min(other.0))
    }

    /// The larger of two amounts.
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        Bits(self.0.max(other.0))
    }
}

impl Add for Bits {
    type Output = Bits;
    fn add(self, rhs: Bits) -> Bits {
        Bits(self.0 + rhs.0)
    }
}

impl AddAssign for Bits {
    fn add_assign(&mut self, rhs: Bits) {
        self.0 += rhs.0;
    }
}

impl Sub for Bits {
    type Output = Bits;
    fn sub(self, rhs: Bits) -> Bits {
        Bits(self.0 - rhs.0)
    }
}

impl SubAssign for Bits {
    fn sub_assign(&mut self, rhs: Bits) {
        self.0 -= rhs.0;
    }
}

impl Mul<f64> for Bits {
    type Output = Bits;
    fn mul(self, rhs: f64) -> Bits {
        Bits(self.0 * rhs)
    }
}

impl Mul<Bits> for f64 {
    type Output = Bits;
    fn mul(self, rhs: Bits) -> Bits {
        Bits(self * rhs.0)
    }
}

impl Div<f64> for Bits {
    type Output = Bits;
    fn div(self, rhs: f64) -> Bits {
        Bits(self.0 / rhs)
    }
}

impl Div<Bits> for Bits {
    type Output = f64;
    fn div(self, rhs: Bits) -> f64 {
        self.0 / rhs.0
    }
}

impl Div<BitRate> for Bits {
    type Output = Seconds;
    fn div(self, rhs: BitRate) -> Seconds {
        Seconds(self.0 / rhs.0)
    }
}

impl Sum for Bits {
    fn sum<I: Iterator<Item = Bits>>(iter: I) -> Bits {
        iter.fold(Bits::ZERO, Add::add)
    }
}

impl fmt::Display for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b.abs() >= 8.0 * 1024.0 * 1024.0 * 1024.0 {
            write!(f, "{:.2} GiB", self.as_gibibytes())
        } else if b.abs() >= 8.0 * 1024.0 * 1024.0 {
            write!(f, "{:.2} MiB", self.as_mebibytes())
        } else if b.abs() >= 8.0 * 1024.0 {
            write!(f, "{:.2} KiB", self.as_bytes() / 1024.0)
        } else {
            write!(f, "{b:.0} b")
        }
    }
}

/// A data rate, in bits per second.
#[derive(Clone, Copy, Debug, Default, PartialEq, PartialOrd)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BitRate(f64);

forward_partial_ord_total!(BitRate);

impl BitRate {
    /// Zero rate.
    pub const ZERO: BitRate = BitRate(0.0);

    /// Constructs from bits per second.
    #[must_use]
    pub const fn new(bits_per_sec: f64) -> Self {
        BitRate(bits_per_sec)
    }

    /// Constructs from megabits per second (10⁶ bits/s) — the unit the paper
    /// uses for `TR` (120 Mbps) and `CR` (1.5 Mbps).
    #[must_use]
    pub fn from_mbps(mbps: f64) -> Self {
        BitRate(mbps * 1.0e6)
    }

    /// Raw bits per second.
    #[must_use]
    pub const fn as_f64(self) -> f64 {
        self.0
    }

    /// Value in megabits per second.
    #[must_use]
    pub fn as_mbps(self) -> f64 {
        self.0 / 1.0e6
    }

    /// True for finite, strictly positive rates.
    #[must_use]
    pub fn is_valid_rate(self) -> bool {
        self.0.is_finite() && self.0 > 0.0
    }
}

impl Add for BitRate {
    type Output = BitRate;
    fn add(self, rhs: BitRate) -> BitRate {
        BitRate(self.0 + rhs.0)
    }
}

impl Sub for BitRate {
    type Output = BitRate;
    fn sub(self, rhs: BitRate) -> BitRate {
        BitRate(self.0 - rhs.0)
    }
}

impl Mul<f64> for BitRate {
    type Output = BitRate;
    fn mul(self, rhs: f64) -> BitRate {
        BitRate(self.0 * rhs)
    }
}

impl Mul<BitRate> for f64 {
    type Output = BitRate;
    fn mul(self, rhs: BitRate) -> BitRate {
        BitRate(self * rhs.0)
    }
}

impl Mul<Seconds> for BitRate {
    type Output = Bits;
    fn mul(self, rhs: Seconds) -> Bits {
        Bits(self.0 * rhs.0)
    }
}

impl Div<BitRate> for BitRate {
    type Output = f64;
    fn div(self, rhs: BitRate) -> f64 {
        self.0 / rhs.0
    }
}

impl fmt::Display for BitRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} Mbps", self.as_mbps())
    }
}

/// A duration, in seconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, PartialOrd)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Seconds(f64);

forward_partial_ord_total!(Seconds);

impl Seconds {
    /// Zero duration.
    pub const ZERO: Seconds = Seconds(0.0);

    /// Constructs from seconds.
    #[must_use]
    pub const fn from_secs(secs: f64) -> Self {
        Seconds(secs)
    }

    /// Constructs from milliseconds.
    #[must_use]
    pub fn from_millis(ms: f64) -> Self {
        Seconds(ms / 1.0e3)
    }

    /// Constructs from minutes.
    #[must_use]
    pub fn from_minutes(minutes: f64) -> Self {
        Seconds(minutes * 60.0)
    }

    /// Constructs from hours.
    #[must_use]
    pub fn from_hours(hours: f64) -> Self {
        Seconds(hours * 3600.0)
    }

    /// Value in seconds.
    #[must_use]
    pub const fn as_secs_f64(self) -> f64 {
        self.0
    }

    /// Value in milliseconds.
    #[must_use]
    pub fn as_millis(self) -> f64 {
        self.0 * 1.0e3
    }

    /// Value in minutes.
    #[must_use]
    pub fn as_minutes(self) -> f64 {
        self.0 / 60.0
    }

    /// Value in hours.
    #[must_use]
    pub fn as_hours(self) -> f64 {
        self.0 / 3600.0
    }

    /// True for finite, non-negative durations.
    #[must_use]
    pub fn is_valid_duration(self) -> bool {
        self.0.is_finite() && self.0 >= 0.0
    }

    /// The smaller of two durations.
    #[must_use]
    pub fn min(self, other: Self) -> Self {
        Seconds(self.0.min(other.0))
    }

    /// The larger of two durations.
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        Seconds(self.0.max(other.0))
    }
}

impl Add for Seconds {
    type Output = Seconds;
    fn add(self, rhs: Seconds) -> Seconds {
        Seconds(self.0 + rhs.0)
    }
}

impl AddAssign for Seconds {
    fn add_assign(&mut self, rhs: Seconds) {
        self.0 += rhs.0;
    }
}

impl Sub for Seconds {
    type Output = Seconds;
    fn sub(self, rhs: Seconds) -> Seconds {
        Seconds(self.0 - rhs.0)
    }
}

impl SubAssign for Seconds {
    fn sub_assign(&mut self, rhs: Seconds) {
        self.0 -= rhs.0;
    }
}

impl Neg for Seconds {
    type Output = Seconds;
    fn neg(self) -> Seconds {
        Seconds(-self.0)
    }
}

impl Mul<f64> for Seconds {
    type Output = Seconds;
    fn mul(self, rhs: f64) -> Seconds {
        Seconds(self.0 * rhs)
    }
}

impl Mul<Seconds> for f64 {
    type Output = Seconds;
    fn mul(self, rhs: Seconds) -> Seconds {
        Seconds(self * rhs.0)
    }
}

impl Mul<BitRate> for Seconds {
    type Output = Bits;
    fn mul(self, rhs: BitRate) -> Bits {
        Bits(self.0 * rhs.0)
    }
}

impl Div<f64> for Seconds {
    type Output = Seconds;
    fn div(self, rhs: f64) -> Seconds {
        Seconds(self.0 / rhs)
    }
}

impl Div<Seconds> for Seconds {
    type Output = f64;
    fn div(self, rhs: Seconds) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Seconds {
    fn sum<I: Iterator<Item = Seconds>>(iter: I) -> Seconds {
        iter.fold(Seconds::ZERO, Add::add)
    }
}

impl fmt::Display for Seconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0;
        if s.abs() >= 3600.0 {
            write!(f, "{:.2} h", self.as_hours())
        } else if s.abs() >= 60.0 {
            write!(f, "{:.2} min", self.as_minutes())
        } else if s.abs() >= 1.0 {
            write!(f, "{s:.3} s")
        } else {
            write!(f, "{:.3} ms", self.as_millis())
        }
    }
}

/// An absolute point on the simulation clock, measured in seconds from the
/// start of the run.
///
/// Distinct from [`Seconds`] so that nonsensical operations
/// (`Instant + Instant`) do not type-check.
#[derive(Clone, Copy, Debug, Default, PartialEq, PartialOrd)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Instant(f64);

forward_partial_ord_total!(Instant);

impl Instant {
    /// The start of the simulation.
    pub const ZERO: Instant = Instant(0.0);

    /// Constructs from seconds since simulation start.
    #[must_use]
    pub const fn from_secs(secs: f64) -> Self {
        Instant(secs)
    }

    /// Seconds since simulation start.
    #[must_use]
    pub const fn as_secs_f64(self) -> f64 {
        self.0
    }

    /// Duration since simulation start.
    #[must_use]
    pub const fn elapsed_from_start(self) -> Seconds {
        Seconds(self.0)
    }

    /// The later of two instants.
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        Instant(self.0.max(other.0))
    }

    /// The earlier of two instants.
    #[must_use]
    pub fn min(self, other: Self) -> Self {
        Instant(self.0.min(other.0))
    }
}

impl Add<Seconds> for Instant {
    type Output = Instant;
    fn add(self, rhs: Seconds) -> Instant {
        Instant(self.0 + rhs.0)
    }
}

impl AddAssign<Seconds> for Instant {
    fn add_assign(&mut self, rhs: Seconds) {
        self.0 += rhs.0;
    }
}

impl Sub<Seconds> for Instant {
    type Output = Instant;
    fn sub(self, rhs: Seconds) -> Instant {
        Instant(self.0 - rhs.0)
    }
}

impl Sub for Instant {
    type Output = Seconds;
    fn sub(self, rhs: Instant) -> Seconds {
        Seconds(self.0 - rhs.0)
    }
}

impl fmt::Display for Instant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_conversions_round_trip() {
        let b = Bits::from_megabits(12.5);
        assert!((b.as_megabits() - 12.5).abs() < 1e-12);
        let b = Bits::from_mebibytes(3.0);
        assert!((b.as_mebibytes() - 3.0).abs() < 1e-12);
        let b = Bits::from_gibibytes(2.0);
        assert!((b.as_gibibytes() - 2.0).abs() < 1e-12);
        assert!((Bits::from_bytes(10.0).as_f64() - 80.0).abs() < 1e-12);
    }

    #[test]
    fn bits_arithmetic() {
        let a = Bits::new(100.0);
        let b = Bits::new(40.0);
        assert_eq!(a + b, Bits::new(140.0));
        assert_eq!(a - b, Bits::new(60.0));
        assert_eq!(a * 2.0, Bits::new(200.0));
        assert_eq!(2.0 * a, Bits::new(200.0));
        assert_eq!(a / 4.0, Bits::new(25.0));
        assert!((a / b - 2.5).abs() < 1e-12);
        let mut c = a;
        c += b;
        assert_eq!(c, Bits::new(140.0));
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn bits_over_rate_gives_seconds() {
        let t = Bits::from_megabits(120.0) / BitRate::from_mbps(120.0);
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rate_times_time_gives_bits() {
        let b = BitRate::from_mbps(1.5) * Seconds::from_secs(10.0);
        assert!((b.as_megabits() - 15.0).abs() < 1e-12);
        let b2 = Seconds::from_secs(10.0) * BitRate::from_mbps(1.5);
        assert_eq!(b, b2);
    }

    #[test]
    fn seconds_conversions() {
        assert!((Seconds::from_minutes(2.0).as_secs_f64() - 120.0).abs() < 1e-12);
        assert!((Seconds::from_hours(1.0).as_minutes() - 60.0).abs() < 1e-12);
        assert!((Seconds::from_millis(250.0).as_secs_f64() - 0.25).abs() < 1e-12);
        assert!((Seconds::from_secs(7200.0).as_hours() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn instant_arithmetic() {
        let t0 = Instant::from_secs(10.0);
        let t1 = t0 + Seconds::from_secs(5.0);
        assert_eq!(t1.as_secs_f64(), 15.0);
        assert_eq!(t1 - t0, Seconds::from_secs(5.0));
        assert_eq!(t1 - Seconds::from_secs(15.0), Instant::ZERO);
        assert_eq!(t0.max(t1), t1);
        assert_eq!(t0.min(t1), t0);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![Bits::new(3.0), Bits::new(1.0), Bits::new(2.0)];
        v.sort();
        assert_eq!(v, vec![Bits::new(1.0), Bits::new(2.0), Bits::new(3.0)]);

        let mut t = [Instant::from_secs(2.0), Instant::from_secs(1.0)];
        t.sort();
        assert_eq!(t[0], Instant::from_secs(1.0));
    }

    #[test]
    fn validity_predicates() {
        assert!(Bits::new(0.0).is_valid_size());
        assert!(!Bits::new(-1.0).is_valid_size());
        assert!(!Bits::new(f64::NAN).is_valid_size());
        assert!(BitRate::from_mbps(1.0).is_valid_rate());
        assert!(!BitRate::ZERO.is_valid_rate());
        assert!(Seconds::ZERO.is_valid_duration());
        assert!(!Seconds::from_secs(-0.1).is_valid_duration());
    }

    #[test]
    fn clamp_non_negative_erases_float_noise() {
        assert_eq!(Bits::new(-1e-9).clamp_non_negative(), Bits::ZERO);
        assert_eq!(Bits::new(5.0).clamp_non_negative(), Bits::new(5.0));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", Bits::from_gibibytes(2.0)), "2.00 GiB");
        assert_eq!(format!("{}", Seconds::from_secs(0.005)), "5.000 ms");
        assert_eq!(format!("{}", Seconds::from_minutes(3.0)), "3.00 min");
        assert_eq!(format!("{}", BitRate::from_mbps(120.0)), "120.00 Mbps");
    }

    #[test]
    fn sums_accumulate() {
        let total: Bits = (1..=4).map(|i| Bits::new(f64::from(i))).sum();
        assert_eq!(total, Bits::new(10.0));
        let total: Seconds = (1..=3).map(|i| Seconds::from_secs(f64::from(i))).sum();
        assert_eq!(total, Seconds::from_secs(6.0));
    }
}
