//! Property tests for the dimensional newtypes: the arithmetic laws the
//! rest of the workspace silently relies on.

use proptest::prelude::*;
use vod_types::{BitRate, Bits, Instant, Seconds};

fn finite() -> impl Strategy<Value = f64> {
    -1.0e12f64..1.0e12
}

fn positive() -> impl Strategy<Value = f64> {
    1.0e-3f64..1.0e12
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn bits_addition_is_commutative_and_associative(a in finite(), b in finite(), c in finite()) {
        let (x, y, z) = (Bits::new(a), Bits::new(b), Bits::new(c));
        prop_assert_eq!(x + y, y + x);
        let l = ((x + y) + z).as_f64();
        let r = (x + (y + z)).as_f64();
        prop_assert!((l - r).abs() <= 1e-9 * l.abs().max(r.abs()).max(1.0));
    }

    #[test]
    fn bits_rate_time_triangle(rate in positive(), secs in positive()) {
        // bits = rate · time, time = bits / rate: the triangle closes.
        let r = BitRate::new(rate);
        let t = Seconds::from_secs(secs);
        let b = r * t;
        let back = b / r;
        prop_assert!((back.as_secs_f64() - secs).abs() <= 1e-9 * secs);
    }

    #[test]
    fn unit_conversions_round_trip(v in positive()) {
        prop_assert!((Bits::from_megabits(v).as_megabits() - v).abs() <= 1e-9 * v);
        prop_assert!((Bits::from_mebibytes(v).as_mebibytes() - v).abs() <= 1e-9 * v);
        prop_assert!((Bits::from_gigabytes(v).as_gigabytes() - v).abs() <= 1e-9 * v);
        prop_assert!((Seconds::from_minutes(v).as_minutes() - v).abs() <= 1e-9 * v);
        prop_assert!((Seconds::from_hours(v).as_hours() - v).abs() <= 1e-9 * v);
        prop_assert!((BitRate::from_mbps(v).as_mbps() - v).abs() <= 1e-9 * v);
    }

    #[test]
    fn instant_offsets_cancel(base in finite(), d in finite()) {
        let t0 = Instant::from_secs(base);
        let delta = Seconds::from_secs(d);
        let t1 = t0 + delta;
        let diff = t1 - t0;
        prop_assert!((diff.as_secs_f64() - d).abs() <= 1e-9 * d.abs().max(base.abs()).max(1.0));
        let back = t1 - delta;
        prop_assert!((back.as_secs_f64() - base).abs() <= 1e-9 * d.abs().max(base.abs()).max(1.0));
    }

    #[test]
    fn ordering_agrees_with_raw_values(a in finite(), b in finite()) {
        prop_assert_eq!(Bits::new(a) < Bits::new(b), a < b);
        prop_assert_eq!(Seconds::from_secs(a) < Seconds::from_secs(b), a < b);
        prop_assert_eq!(Instant::from_secs(a) < Instant::from_secs(b), a < b);
        prop_assert_eq!(
            Bits::new(a).max(Bits::new(b)).as_f64(),
            a.max(b)
        );
    }

    #[test]
    fn clamp_non_negative_is_idempotent_and_bounded(a in finite()) {
        let c = Bits::new(a).clamp_non_negative();
        prop_assert!(c.as_f64() >= 0.0);
        prop_assert_eq!(c.clamp_non_negative(), c);
        if a >= 0.0 {
            prop_assert_eq!(c.as_f64(), a);
        }
    }

    #[test]
    fn sum_equals_fold(values in prop::collection::vec(finite(), 0..40)) {
        let via_sum: Bits = values.iter().map(|&v| Bits::new(v)).sum();
        let via_fold = values.iter().fold(0.0, |acc, &v| acc + v);
        prop_assert!(
            (via_sum.as_f64() - via_fold).abs()
                <= 1e-9 * via_fold.abs().max(1.0)
        );
    }
}
