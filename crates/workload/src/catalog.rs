//! The video catalog and its placement across disks.

use rand::Rng;
use vod_types::{BitRate, Bits, ConfigError, DiskId, Seconds, VideoId};

use crate::zipf::Zipf;

/// One stored video.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VideoInfo {
    /// The video's identifier (unique across the catalog).
    pub id: VideoId,
    /// The disk holding it.
    pub disk: DiskId,
    /// Stored size.
    pub size: Bits,
    /// Playback length at the system consumption rate.
    pub length: Seconds,
}

/// A catalog of equal-length videos spread over a disk array, with a
/// Zipf(θ) distribution of *disk load*: the probability that a request
/// targets disk `d` follows the paper's Fig. 13/14 model of popularity-
/// induced load imbalance.
#[derive(Clone, Debug)]
pub struct Catalog {
    videos: Vec<VideoInfo>,
    per_disk: Vec<Vec<VideoId>>,
    disk_load: Zipf,
}

impl Catalog {
    /// Builds a catalog of `disks × videos_per_disk` videos, each of
    /// `length` at rate `cr`, with disk load skew `disk_theta`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for zero disks/videos, invalid rates or
    /// lengths, or θ outside `[0, 1]`.
    pub fn build(
        disks: usize,
        videos_per_disk: usize,
        cr: BitRate,
        length: Seconds,
        disk_theta: f64,
    ) -> Result<Self, ConfigError> {
        if disks == 0 {
            return Err(ConfigError::new("disks", "must be at least 1"));
        }
        if videos_per_disk == 0 {
            return Err(ConfigError::new("videos_per_disk", "must be at least 1"));
        }
        if !cr.is_valid_rate() {
            return Err(ConfigError::new("consumption_rate", "must be positive"));
        }
        if !length.is_valid_duration() || length <= Seconds::ZERO {
            return Err(ConfigError::new("video_length", "must be positive"));
        }
        let disk_load = Zipf::new(disks, disk_theta)?;
        let size = cr * length;
        let mut videos = Vec::with_capacity(disks * videos_per_disk);
        let mut per_disk = vec![Vec::with_capacity(videos_per_disk); disks];
        let mut next = 0u64;
        for (d, disk_videos) in per_disk.iter_mut().enumerate() {
            for _ in 0..videos_per_disk {
                let id = VideoId::new(next);
                next += 1;
                videos.push(VideoInfo {
                    id,
                    disk: DiskId::new(d as u64),
                    size,
                    length,
                });
                disk_videos.push(id);
            }
        }
        Ok(Catalog {
            videos,
            per_disk,
            disk_load,
        })
    }

    /// The paper's catalog: 120-minute MPEG-1 titles (1.5 Mbps), six per
    /// Barracuda 9LP, across `disks` drives.
    ///
    /// # Errors
    ///
    /// As [`Catalog::build`].
    pub fn paper_catalog(disks: usize, disk_theta: f64) -> Result<Self, ConfigError> {
        Catalog::build(
            disks,
            6,
            BitRate::from_mbps(1.5),
            Seconds::from_minutes(120.0),
            disk_theta,
        )
    }

    /// All videos, id order.
    #[must_use]
    pub fn videos(&self) -> &[VideoInfo] {
        &self.videos
    }

    /// Videos on one disk.
    #[must_use]
    pub fn on_disk(&self, disk: DiskId) -> &[VideoId] {
        self.per_disk
            .get(disk.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of disks.
    #[must_use]
    pub fn disks(&self) -> usize {
        self.per_disk.len()
    }

    /// Probability that a request lands on `disk` (the Zipf load model;
    /// rank = disk index + 1).
    #[must_use]
    pub fn disk_probability(&self, disk: DiskId) -> f64 {
        self.disk_load.probability(disk.index() + 1)
    }

    /// Samples a request target: a disk by the Zipf load model, then a
    /// video uniformly within that disk.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> VideoInfo {
        let disk = self.disk_load.sample(rng) - 1;
        let vids = &self.per_disk[disk];
        let v = vids[rng.gen_range(0..vids.len())];
        self.videos[v.index()]
    }

    /// Looks up a video.
    #[must_use]
    pub fn video(&self, id: VideoId) -> Option<&VideoInfo> {
        self.videos.get(id.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_catalog_has_six_videos_per_disk() {
        let c = Catalog::paper_catalog(10, 0.0).expect("valid");
        assert_eq!(c.disks(), 10);
        assert_eq!(c.videos().len(), 60);
        for d in 0..10 {
            assert_eq!(c.on_disk(DiskId::new(d)).len(), 6);
        }
        // 120 min at 1.5 Mbps = 1.08e10 bits.
        assert!((c.videos()[0].size.as_f64() - 1.08e10).abs() < 1.0);
    }

    #[test]
    fn video_ids_are_dense_and_disk_tagged() {
        let c = Catalog::paper_catalog(3, 0.5).expect("valid");
        for (i, v) in c.videos().iter().enumerate() {
            assert_eq!(v.id, VideoId::new(i as u64));
            assert_eq!(c.video(v.id), Some(v));
            assert!(v.disk.index() < 3);
        }
        assert!(c.video(VideoId::new(999)).is_none());
        assert!(c.on_disk(DiskId::new(9)).is_empty());
    }

    #[test]
    fn disk_probabilities_follow_zipf() {
        let c = Catalog::paper_catalog(10, 0.0).expect("valid");
        let p0 = c.disk_probability(DiskId::new(0));
        let p9 = c.disk_probability(DiskId::new(9));
        assert!(p0 > p9, "disk 0 must be the hottest under θ=0");
        let total: f64 = (0..10).map(|d| c.disk_probability(DiskId::new(d))).sum();
        assert!((total - 1.0).abs() < 1e-12);

        let u = Catalog::paper_catalog(10, 1.0).expect("valid");
        assert!((u.disk_probability(DiskId::new(0)) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn sampling_respects_disk_skew() {
        let c = Catalog::paper_catalog(10, 0.0).expect("valid");
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0usize; 10];
        let draws = 100_000;
        for _ in 0..draws {
            let v = c.sample(&mut rng);
            counts[v.disk.index()] += 1;
        }
        for (d, &count) in counts.iter().enumerate() {
            let emp = count as f64 / draws as f64;
            let exp = c.disk_probability(DiskId::new(d as u64));
            assert!((emp - exp).abs() < 0.01, "disk {d}: {emp} vs {exp}");
        }
    }

    #[test]
    fn rejects_bad_configs() {
        assert!(Catalog::paper_catalog(0, 0.0).is_err());
        assert!(Catalog::build(
            1,
            0,
            BitRate::from_mbps(1.5),
            Seconds::from_minutes(1.0),
            0.0
        )
        .is_err());
        assert!(Catalog::build(1, 1, BitRate::ZERO, Seconds::from_minutes(1.0), 0.0).is_err());
        assert!(Catalog::build(1, 1, BitRate::from_mbps(1.5), Seconds::ZERO, 0.0).is_err());
        assert!(Catalog::paper_catalog(2, 1.5).is_err());
    }
}
