//! Workload generation for VOD simulations.
//!
//! §5.1 of the paper fixes the workload model this crate reproduces:
//!
//! * user requests arrive in a **Poisson process** whose rate `λ` changes
//!   every 30 minutes;
//! * the per-slot rates follow a **Zipf distribution** (parameter `θ`)
//!   ranked by distance from a peak at **hour 9** of the day — `θ = 0` is
//!   a sharply peaked evening-rush profile, `θ = 1` a uniform one;
//! * viewing times are **uniform on (0, 120 min)** — VCR operations are
//!   modelled as departures plus new requests;
//! * for multi-disk experiments, each request's target disk follows a
//!   Zipf distribution of disk load (Wolf et al. report `θ = 0.271` for
//!   real video popularity).
//!
//! [`trace::generate`] turns a [`trace::WorkloadConfig`] plus a seed into
//! a reproducible [`trace::Workload`] — a time-sorted arrival list the
//! simulator replays. Keeping generation separate from simulation means
//! the *same trace* can be replayed against every scheme/method
//! combination, which is how the paper compares them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod multi;
pub mod persist;
pub mod poisson;
pub mod profile;
pub mod trace;
pub mod vcr;
pub mod zipf;

pub use catalog::Catalog;
pub use multi::{multi_movie, MultiMovieConfig};
pub use profile::RateProfile;
pub use trace::{generate, Arrival, Workload, WorkloadConfig};
pub use vcr::{with_vcr_actions, VcrConfig};
pub use zipf::Zipf;
