//! Cluster workloads: per-movie Poisson arrivals over a shared Zipf
//! catalog.
//!
//! The single-disk generator ([`crate::trace::generate`]) draws one
//! global Poisson process and samples a movie per arrival. A cluster
//! front end wants the converse decomposition: each movie is its own
//! Poisson process whose rate is the global time-of-day profile scaled by
//! the movie's Zipf popularity — the superposition is distributed
//! identically, but every movie's sub-trace is a function of `(seed,
//! movie)` **only**. Placement, dispatch, and the number of nodes are not
//! inputs, so the same seed yields the same trace no matter how the
//! cluster is sized or sharded — the property the cluster determinism
//! tests pin down.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vod_types::{ConfigError, DiskId, Seconds, VideoId};

use crate::poisson;
use crate::profile::RateProfile;
use crate::trace::{Arrival, Workload};
use crate::zipf::Zipf;

/// Configuration of a cluster workload: a shared movie catalog with
/// Zipf(θ) popularity, each movie arriving as an independent Poisson
/// process modulated by the paper's time-of-day profile.
#[derive(Clone, Debug)]
pub struct MultiMovieConfig {
    /// Catalog size. Movie rank `r` (1 = most popular) is `VideoId(r−1)`.
    pub movies: usize,
    /// Zipf skew of movie popularity (Wolf et al. report θ = 0.271 for
    /// real video popularity; θ = 1 is uniform).
    pub movie_theta: f64,
    /// Simulated horizon.
    pub duration: Seconds,
    /// Rate-change granularity of the time-of-day profile.
    pub slot_len: Seconds,
    /// Peak time of the profile (hour 9 in the paper).
    pub peak: Seconds,
    /// Zipf parameter of the time-of-day profile (§5.1; 1 = uniform).
    pub profile_theta: f64,
    /// Total expected arrivals over the horizon, across all movies.
    pub expected_arrivals: f64,
    /// Upper bound of the uniform viewing-time distribution.
    pub max_viewing: Seconds,
}

impl MultiMovieConfig {
    /// A paper-day cluster workload: 24 h horizon, 30-minute slots,
    /// hour-9 peak, uniform time profile, 120-minute max viewing.
    #[must_use]
    pub fn paper_cluster(movies: usize, movie_theta: f64, expected_arrivals: f64) -> Self {
        MultiMovieConfig {
            movies,
            movie_theta,
            duration: Seconds::from_hours(24.0),
            slot_len: Seconds::from_minutes(30.0),
            peak: Seconds::from_hours(9.0),
            profile_theta: 1.0,
            expected_arrivals,
            max_viewing: Seconds::from_minutes(120.0),
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when any constituent model rejects its
    /// parameters.
    pub fn validate(&self) -> Result<(), ConfigError> {
        Zipf::new(self.movies, self.movie_theta)?;
        RateProfile::zipf_peaked(
            self.duration,
            self.slot_len,
            self.peak,
            self.profile_theta,
            self.expected_arrivals,
        )?;
        if !self.max_viewing.is_valid_duration() || self.max_viewing <= Seconds::ZERO {
            return Err(ConfigError::new("max_viewing", "must be positive"));
        }
        Ok(())
    }

    /// The movie-popularity distribution this config induces.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for invalid catalog parameters.
    pub fn popularity(&self) -> Result<Zipf, ConfigError> {
        Zipf::new(self.movies, self.movie_theta)
    }
}

/// Derives the sub-seed of one movie's Poisson process (splitmix64-style
/// mixing): a pure function of `(seed, movie)`, so sub-traces never
/// depend on catalog iteration order.
fn movie_seed(seed: u64, movie: u64) -> u64 {
    let mut z = seed ^ movie.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generates a cluster workload from one seed: for each movie rank `r`,
/// a Poisson process with per-slot rates `profile · P_zipf(r)` and
/// uniform viewing times, merged into one time-sorted trace.
///
/// All arrivals carry `disk = 0`: the movie→node mapping is the cluster
/// placement layer's job, not the workload's. The trace is a function of
/// `(config, seed)` only — same seed ⇒ identical trace regardless of the
/// node count it is later dispatched across.
///
/// # Errors
///
/// Returns [`ConfigError`] when the configuration is invalid.
pub fn multi_movie(config: &MultiMovieConfig, seed: u64) -> Result<Workload, ConfigError> {
    config.validate()?;
    let popularity = Zipf::new(config.movies, config.movie_theta)?;
    let profile = RateProfile::zipf_peaked(
        config.duration,
        config.slot_len,
        config.peak,
        config.profile_theta,
        config.expected_arrivals,
    )?;

    let mut arrivals: Vec<Arrival> = Vec::new();
    let mut scaled_rates = Vec::with_capacity(profile.slot_rates().len());
    for rank in 1..=config.movies {
        let p = popularity.probability(rank);
        scaled_rates.clear();
        scaled_rates.extend(profile.slot_rates().iter().map(|r| r * p));
        let mut rng = StdRng::seed_from_u64(movie_seed(seed, rank as u64 - 1));
        let times = poisson::piecewise(
            &mut rng,
            &scaled_rates,
            profile.slot_len(),
            vod_types::Instant::ZERO,
        );
        let video = VideoId::new(rank as u64 - 1);
        for at in times {
            let viewing = Seconds::from_secs(rng.gen::<f64>() * config.max_viewing.as_secs_f64());
            arrivals.push(Arrival {
                at,
                disk: DiskId::new(0),
                video,
                viewing,
            });
        }
    }
    // Merge the per-movie processes. Poisson times tie with probability
    // zero, but the sort must still be a total order: break ties by
    // movie rank so the merged trace is unique.
    arrivals.sort_by(|a, b| {
        a.at.as_secs_f64()
            .total_cmp(&b.at.as_secs_f64())
            .then(a.video.raw().cmp(&b.video.raw()))
    });
    Ok(Workload { arrivals })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MultiMovieConfig {
        MultiMovieConfig::paper_cluster(20, 0.271, 500.0)
    }

    #[test]
    fn same_seed_is_bit_identical_regardless_of_node_count() {
        // Node count is deliberately not an input to generation: the
        // trace a 1-node and a 16-node cluster dispatch is the same
        // object. Two generations from one seed must agree bit-exactly.
        let a = multi_movie(&cfg(), 42).expect("valid multi-movie config");
        let b = multi_movie(&cfg(), 42).expect("valid multi-movie config");
        assert_eq!(a.arrivals.len(), b.arrivals.len());
        for (x, y) in a.arrivals.iter().zip(&b.arrivals) {
            assert_eq!(x.at, y.at);
            assert_eq!(x.video, y.video);
            assert_eq!(x.viewing, y.viewing);
        }
        let c = multi_movie(&cfg(), 43).expect("valid multi-movie config");
        assert!(
            !(a.arrivals.len() == c.arrivals.len()
                && a.arrivals
                    .iter()
                    .zip(&c.arrivals)
                    .all(|(x, y)| x.at == y.at)),
            "different seeds should differ"
        );
    }

    #[test]
    fn trace_is_sorted_and_roughly_sized() {
        let w = multi_movie(&cfg(), 7).expect("valid multi-movie config");
        assert!(w.arrivals.windows(2).all(|p| p[0].at <= p[1].at));
        let n = w.len() as f64;
        assert!((n - 500.0).abs() < 5.0 * 500.0_f64.sqrt(), "count {n}");
    }

    #[test]
    fn popular_movies_draw_more_arrivals() {
        let w = multi_movie(&cfg(), 11).expect("valid multi-movie config");
        let count = |v: u64| w.arrivals.iter().filter(|a| a.video.raw() == v).count();
        // Rank 1 vs the tail: with θ = 0.271 the head dominates.
        assert!(count(0) > count(19), "zipf head should outdraw the tail");
    }

    #[test]
    fn movie_subtraces_are_stable_under_catalog_growth() {
        // Growing the catalog adds movies without disturbing existing
        // sub-seeds; only the shared rate normalization shifts. The
        // sub-seed derivation itself must be order-free.
        assert_ne!(movie_seed(1, 0), movie_seed(1, 1));
        assert_ne!(movie_seed(1, 0), movie_seed(2, 0));
        assert_eq!(movie_seed(9, 5), movie_seed(9, 5));
    }
}
