//! Trace persistence: save/load workloads as CSV so experiments can be
//! replayed across processes (and exchanged with other tooling) without
//! regenerating.

use std::io::{BufRead, Write};

use vod_types::{ConfigError, DiskId, Instant, Seconds, VideoId};

use crate::trace::{Arrival, Workload};

const HEADER: &str = "at_secs,disk,video,viewing_secs";

/// Writes the workload as CSV (`at_secs,disk,video,viewing_secs`).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_csv<W: Write>(workload: &Workload, mut out: W) -> std::io::Result<()> {
    writeln!(out, "{HEADER}")?;
    for a in &workload.arrivals {
        writeln!(
            out,
            "{:.9},{},{},{:.9}",
            a.at.as_secs_f64(),
            a.disk.raw(),
            a.video.raw(),
            a.viewing.as_secs_f64()
        )?;
    }
    Ok(())
}

/// Parses a workload from the CSV produced by [`write_csv`].
///
/// # Errors
///
/// Returns [`ConfigError`] for malformed headers, rows, unparsable
/// fields, or out-of-order arrivals.
pub fn read_csv<R: BufRead>(input: R) -> Result<Workload, ConfigError> {
    let mut lines = input.lines();
    let header = lines
        .next()
        .transpose()
        .map_err(|e| ConfigError::new("trace_csv", format!("read error: {e}")))?
        .ok_or_else(|| ConfigError::new("trace_csv", "empty input"))?;
    if header.trim() != HEADER {
        return Err(ConfigError::new(
            "trace_csv",
            format!("unexpected header `{header}`"),
        ));
    }
    let mut arrivals = Vec::new();
    let mut prev = f64::NEG_INFINITY;
    for (lineno, line) in lines.enumerate() {
        let line = line.map_err(|e| ConfigError::new("trace_csv", format!("read error: {e}")))?;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 4 {
            return Err(ConfigError::new(
                "trace_csv",
                format!(
                    "row {}: expected 4 fields, got {}",
                    lineno + 2,
                    fields.len()
                ),
            ));
        }
        let parse_f = |s: &str, what: &str| -> Result<f64, ConfigError> {
            s.trim().parse::<f64>().map_err(|_| {
                ConfigError::new("trace_csv", format!("row {}: bad {what} `{s}`", lineno + 2))
            })
        };
        let parse_u = |s: &str, what: &str| -> Result<u64, ConfigError> {
            s.trim().parse::<u64>().map_err(|_| {
                ConfigError::new("trace_csv", format!("row {}: bad {what} `{s}`", lineno + 2))
            })
        };
        let at = parse_f(fields[0], "arrival time")?;
        let viewing = parse_f(fields[3], "viewing time")?;
        if !at.is_finite() || at < prev {
            return Err(ConfigError::new(
                "trace_csv",
                format!("row {}: arrivals must be time-sorted", lineno + 2),
            ));
        }
        if !viewing.is_finite() || viewing < 0.0 {
            return Err(ConfigError::new(
                "trace_csv",
                format!("row {}: negative viewing", lineno + 2),
            ));
        }
        prev = at;
        arrivals.push(Arrival {
            at: Instant::from_secs(at),
            disk: DiskId::new(parse_u(fields[1], "disk id")?),
            video: VideoId::new(parse_u(fields[2], "video id")?),
            viewing: Seconds::from_secs(viewing),
        });
    }
    Ok(Workload { arrivals })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{generate, WorkloadConfig};

    #[test]
    fn round_trip_preserves_the_trace() {
        let w = generate(&WorkloadConfig::paper_single_disk(0.5, 200.0), 4).expect("valid");
        let mut buf = Vec::new();
        write_csv(&w, &mut buf).expect("in-memory write");
        let back = read_csv(buf.as_slice()).expect("own output parses");
        assert_eq!(back.len(), w.len());
        for (a, b) in w.arrivals.iter().zip(&back.arrivals) {
            assert!((a.at.as_secs_f64() - b.at.as_secs_f64()).abs() < 1e-6);
            assert_eq!(a.disk, b.disk);
            assert_eq!(a.video, b.video);
            assert!((a.viewing.as_secs_f64() - b.viewing.as_secs_f64()).abs() < 1e-6);
        }
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(read_csv(&b""[..]).is_err());
        assert!(read_csv(&b"wrong,header\n"[..]).is_err());
        let bad_fields = format!("{HEADER}\n1.0,0,0\n");
        assert!(read_csv(bad_fields.as_bytes()).is_err());
        let bad_number = format!("{HEADER}\nxyz,0,0,1.0\n");
        assert!(read_csv(bad_number.as_bytes()).is_err());
        let unsorted = format!("{HEADER}\n5.0,0,0,1.0\n1.0,0,0,1.0\n");
        assert!(read_csv(unsorted.as_bytes()).is_err());
        let negative = format!("{HEADER}\n1.0,0,0,-2.0\n");
        assert!(read_csv(negative.as_bytes()).is_err());
    }

    #[test]
    fn empty_trace_round_trips() {
        let w = Workload::default();
        let mut buf = Vec::new();
        write_csv(&w, &mut buf).expect("write");
        let back = read_csv(buf.as_slice()).expect("parse");
        assert!(back.is_empty());
    }

    #[test]
    fn skips_blank_lines() {
        let csv = format!("{HEADER}\n1.0,0,2,3.5\n\n2.0,1,0,4.0\n");
        let w = read_csv(csv.as_bytes()).expect("parse");
        assert_eq!(w.len(), 2);
        assert_eq!(w.arrivals[1].disk, DiskId::new(1));
    }
}
