//! Poisson arrival processes.

use rand::Rng;
use vod_types::{Instant, Seconds};

/// Samples one exponential interarrival gap for rate `lambda` (arrivals
/// per second). Returns `None` for non-positive rates (no arrivals).
pub fn exponential_gap<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> Option<Seconds> {
    if lambda <= 0.0 || !lambda.is_finite() {
        return None;
    }
    // Inverse-CDF sampling; 1 − U avoids ln(0).
    let u: f64 = rng.gen();
    Some(Seconds::from_secs(-(1.0 - u).ln() / lambda))
}

/// Generates the arrival times of a homogeneous Poisson process with rate
/// `lambda` (arrivals/second) on the interval `[start, end)`.
pub fn homogeneous<R: Rng + ?Sized>(
    rng: &mut R,
    lambda: f64,
    start: Instant,
    end: Instant,
) -> Vec<Instant> {
    let mut out = Vec::new();
    let mut t = start;
    loop {
        let Some(gap) = exponential_gap(rng, lambda) else {
            return out;
        };
        t += gap;
        if t >= end {
            return out;
        }
        out.push(t);
    }
}

/// Generates a piecewise-homogeneous Poisson process: `slots[i]` gives the
/// rate (arrivals/second) over `[start + i·slot_len, start + (i+1)·slot_len)`.
/// This is exactly the paper's "λ changes every 30 minutes" model.
pub fn piecewise<R: Rng + ?Sized>(
    rng: &mut R,
    slot_rates: &[f64],
    slot_len: Seconds,
    start: Instant,
) -> Vec<Instant> {
    let mut out = Vec::new();
    for (i, &lambda) in slot_rates.iter().enumerate() {
        let s = start + slot_len * i as f64;
        let e = start + slot_len * (i + 1) as f64;
        out.extend(homogeneous(rng, lambda, s, e));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gap_mean_is_inverse_rate() {
        let mut rng = StdRng::seed_from_u64(11);
        let lambda = 0.5; // one arrival every 2 s on average
        let n = 100_000;
        let total: f64 = (0..n)
            .map(|_| {
                exponential_gap(&mut rng, lambda)
                    .expect("positive rate")
                    .as_secs_f64()
            })
            .sum();
        let mean = total / f64::from(n);
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn zero_rate_produces_nothing() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(exponential_gap(&mut rng, 0.0).is_none());
        assert!(exponential_gap(&mut rng, -1.0).is_none());
        assert!(homogeneous(&mut rng, 0.0, Instant::ZERO, Instant::from_secs(100.0)).is_empty());
    }

    #[test]
    fn homogeneous_count_matches_rate() {
        let mut rng = StdRng::seed_from_u64(5);
        let lambda = 0.1;
        let horizon = 100_000.0;
        let arrivals = homogeneous(&mut rng, lambda, Instant::ZERO, Instant::from_secs(horizon));
        let expected = lambda * horizon;
        let got = arrivals.len() as f64;
        // ±4σ of a Poisson(10 000).
        assert!(
            (got - expected).abs() < 4.0 * expected.sqrt(),
            "count {got}"
        );
    }

    #[test]
    fn arrivals_are_sorted_and_in_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let arrivals = homogeneous(
            &mut rng,
            1.0,
            Instant::from_secs(50.0),
            Instant::from_secs(150.0),
        );
        assert!(!arrivals.is_empty());
        for w in arrivals.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert!(arrivals[0] >= Instant::from_secs(50.0));
        assert!(*arrivals.last().expect("non-empty") < Instant::from_secs(150.0));
    }

    #[test]
    fn piecewise_respects_slot_rates() {
        let mut rng = StdRng::seed_from_u64(21);
        // Busy slot then silent slot, repeated.
        let rates = [0.5, 0.0, 0.5, 0.0];
        let slot = Seconds::from_secs(10_000.0);
        let arrivals = piecewise(&mut rng, &rates, slot, Instant::ZERO);
        let in_silent = arrivals
            .iter()
            .filter(|t| {
                let s = t.as_secs_f64();
                (10_000.0..20_000.0).contains(&s) || s >= 30_000.0
            })
            .count();
        assert_eq!(in_silent, 0);
        let expected = 2.0 * 0.5 * 10_000.0;
        let got = arrivals.len() as f64;
        assert!((got - expected).abs() < 4.0 * expected.sqrt());
    }

    #[test]
    fn same_seed_reproduces_trace() {
        let a = homogeneous(
            &mut StdRng::seed_from_u64(42),
            0.3,
            Instant::ZERO,
            Instant::from_secs(1000.0),
        );
        let b = homogeneous(
            &mut StdRng::seed_from_u64(42),
            0.3,
            Instant::ZERO,
            Instant::from_secs(1000.0),
        );
        assert_eq!(a, b);
    }
}
