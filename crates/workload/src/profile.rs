//! Time-varying arrival-rate profiles (§5.1, Fig. 6).
//!
//! The paper's simulation changes the arrival rate `λ` every 30 minutes.
//! The per-slot rates follow a Zipf(θ) distribution over the day's slots,
//! ranked by distance from a **peak at hour 9** of service: the slot
//! containing the peak gets rank 1 (the largest share), its neighbours the
//! next ranks, and so on. `θ = 1` degenerates to a uniform profile.

use vod_types::{ConfigError, Instant, Seconds};

use crate::zipf::Zipf;

/// A piecewise-constant daily arrival-rate profile.
#[derive(Clone, Debug)]
pub struct RateProfile {
    slot_len: Seconds,
    /// Arrivals per second in each slot.
    rates: Vec<f64>,
}

impl RateProfile {
    /// Builds the paper's profile: `duration` split into `slot_len` slots,
    /// total expected arrivals `expected_arrivals` distributed over slots
    /// by Zipf(θ) ranked by distance from `peak`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for non-positive durations/slots, a peak
    /// outside the duration, a non-positive arrival budget, or θ outside
    /// `[0, 1]`.
    pub fn zipf_peaked(
        duration: Seconds,
        slot_len: Seconds,
        peak: Seconds,
        theta: f64,
        expected_arrivals: f64,
    ) -> Result<Self, ConfigError> {
        if !duration.is_valid_duration() || duration <= Seconds::ZERO {
            return Err(ConfigError::new("duration", "must be positive"));
        }
        if !slot_len.is_valid_duration() || slot_len <= Seconds::ZERO || slot_len > duration {
            return Err(ConfigError::new("slot_len", "must be in (0, duration]"));
        }
        if !peak.is_valid_duration() || peak > duration {
            return Err(ConfigError::new("peak", "must lie within the duration"));
        }
        if expected_arrivals <= 0.0 || !expected_arrivals.is_finite() {
            return Err(ConfigError::new("expected_arrivals", "must be positive"));
        }
        let slots = (duration / slot_len).ceil() as usize;
        let zipf = Zipf::new(slots, theta)?;

        // Rank slots by distance of their centre from the peak; ties (the
        // two equidistant neighbours) break toward the earlier slot.
        let mut order: Vec<usize> = (0..slots).collect();
        let centre = |i: usize| slot_len.as_secs_f64() * (i as f64 + 0.5);
        order.sort_by(|&a, &b| {
            let da = (centre(a) - peak.as_secs_f64()).abs();
            let db = (centre(b) - peak.as_secs_f64()).abs();
            da.partial_cmp(&db)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });

        let mut rates = vec![0.0; slots];
        for (rank0, &slot) in order.iter().enumerate() {
            let share = zipf.probability(rank0 + 1);
            rates[slot] = expected_arrivals * share / slot_len.as_secs_f64();
        }
        Ok(RateProfile { slot_len, rates })
    }

    /// A flat profile with the given total expected arrivals.
    ///
    /// # Errors
    ///
    /// As [`RateProfile::zipf_peaked`] (θ = 1 makes Zipf uniform).
    pub fn uniform(
        duration: Seconds,
        slot_len: Seconds,
        expected_arrivals: f64,
    ) -> Result<Self, ConfigError> {
        Self::zipf_peaked(duration, slot_len, Seconds::ZERO, 1.0, expected_arrivals)
    }

    /// The arrival rate (arrivals/second) at time `t`; 0 past the horizon.
    #[must_use]
    pub fn rate_at(&self, t: Instant) -> f64 {
        let idx = (t.as_secs_f64() / self.slot_len.as_secs_f64()).floor();
        if idx < 0.0 {
            return 0.0;
        }
        self.rates.get(idx as usize).copied().unwrap_or(0.0)
    }

    /// Per-slot rates (arrivals/second).
    #[must_use]
    pub fn slot_rates(&self) -> &[f64] {
        &self.rates
    }

    /// Slot length.
    #[must_use]
    pub fn slot_len(&self) -> Seconds {
        self.slot_len
    }

    /// Total expected arrivals over the whole profile.
    #[must_use]
    pub fn expected_arrivals(&self) -> f64 {
        self.rates.iter().sum::<f64>() * self.slot_len.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn day() -> Seconds {
        Seconds::from_hours(24.0)
    }

    fn half_hour() -> Seconds {
        Seconds::from_minutes(30.0)
    }

    fn peak9() -> Seconds {
        Seconds::from_hours(9.0)
    }

    #[test]
    fn expected_arrivals_are_preserved() {
        for theta in [0.0, 0.5, 1.0] {
            let p = RateProfile::zipf_peaked(day(), half_hour(), peak9(), theta, 1440.0)
                .expect("valid");
            assert!((p.expected_arrivals() - 1440.0).abs() < 1e-6, "θ={theta}");
            assert_eq!(p.slot_rates().len(), 48);
        }
    }

    #[test]
    fn peak_slot_has_the_highest_rate() {
        let p = RateProfile::zipf_peaked(day(), half_hour(), peak9(), 0.0, 1440.0).expect("valid");
        // Hour 9 is the boundary of slots 17 and 18; their centres are
        // equidistant from the peak, and the tie breaks to slot 17.
        let peak_rate = p.rate_at(Instant::from_secs(8.75 * 3600.0));
        for (i, &r) in p.slot_rates().iter().enumerate() {
            assert!(r <= peak_rate + 1e-15, "slot {i} exceeds the peak");
        }
        assert!((p.slot_rates()[17] - peak_rate).abs() < 1e-15);
    }

    #[test]
    fn rates_decay_away_from_the_peak_when_skewed() {
        let p = RateProfile::zipf_peaked(day(), half_hour(), peak9(), 0.0, 1440.0).expect("valid");
        let at = |h: f64| p.rate_at(Instant::from_secs(h * 3600.0));
        assert!(at(9.0) > at(7.0));
        assert!(at(7.0) > at(2.0));
        assert!(at(9.0) > at(13.0));
        assert!(at(13.0) > at(20.0));
    }

    #[test]
    fn theta_one_is_flat() {
        let p = RateProfile::zipf_peaked(day(), half_hour(), peak9(), 1.0, 1440.0).expect("valid");
        let first = p.slot_rates()[0];
        for &r in p.slot_rates() {
            assert!((r - first).abs() < 1e-15);
        }
        // 1440 arrivals over 24 h = 1 per minute.
        assert!((first - 1.0 / 60.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_constructor_matches_theta_one() {
        let u = RateProfile::uniform(day(), half_hour(), 1440.0).expect("valid");
        let z = RateProfile::zipf_peaked(day(), half_hour(), peak9(), 1.0, 1440.0).expect("valid");
        for (a, b) in u.slot_rates().iter().zip(z.slot_rates()) {
            assert!((a - b).abs() < 1e-15);
        }
    }

    #[test]
    fn rate_is_zero_outside_horizon() {
        let p = RateProfile::uniform(day(), half_hour(), 100.0).expect("valid");
        assert_eq!(p.rate_at(Instant::from_secs(25.0 * 3600.0)), 0.0);
    }

    #[test]
    fn skewed_profile_concentrates_mass_near_peak() {
        // With θ = 0, the six hours around the peak (7–13 h? -> 12 slots)
        // should hold well over their uniform share of arrivals; this is
        // the regime where the paper reports rejections.
        let p = RateProfile::zipf_peaked(day(), half_hour(), peak9(), 0.0, 1440.0).expect("valid");
        let around_peak: f64 = (14..=22)
            .map(|i| p.slot_rates()[i] * half_hour().as_secs_f64())
            .sum();
        assert!(
            around_peak > 1440.0 * 0.35,
            "mass near peak only {around_peak}"
        );
    }

    #[test]
    fn rejects_bad_configs() {
        assert!(RateProfile::zipf_peaked(Seconds::ZERO, half_hour(), peak9(), 0.5, 10.0).is_err());
        assert!(RateProfile::zipf_peaked(day(), Seconds::ZERO, peak9(), 0.5, 10.0).is_err());
        assert!(
            RateProfile::zipf_peaked(day(), half_hour(), Seconds::from_hours(30.0), 0.5, 10.0)
                .is_err()
        );
        assert!(RateProfile::zipf_peaked(day(), half_hour(), peak9(), 0.5, 0.0).is_err());
        assert!(RateProfile::zipf_peaked(day(), half_hour(), peak9(), 1.5, 10.0).is_err());
    }
}
