//! Reproducible workload traces.
//!
//! A [`Workload`] is the full, materialized input of one simulation run:
//! every request's arrival time, target disk/video, and viewing time.
//! Generating it up front (from a [`WorkloadConfig`] and a seed) lets the
//! paper's comparisons replay the *identical* request sequence against
//! each buffer allocation scheme and scheduling method.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vod_types::{ConfigError, DiskId, Instant, Seconds, VideoId};

use crate::catalog::Catalog;
use crate::poisson;
use crate::profile::RateProfile;

/// One user request in a trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Arrival {
    /// Arrival time.
    pub at: Instant,
    /// The disk holding the requested video.
    pub disk: DiskId,
    /// The requested video.
    pub video: VideoId,
    /// How long the user watches before departing (uniform on
    /// `(0, 120 min)` in the paper's model — VCR actions are modelled as
    /// departure + new request).
    pub viewing: Seconds,
}

/// A complete, time-sorted workload.
#[derive(Clone, Debug, Default)]
pub struct Workload {
    /// Arrivals in nondecreasing time order.
    pub arrivals: Vec<Arrival>,
}

impl Workload {
    /// Number of requests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// True when the trace has no requests.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Arrivals targeting one disk, preserving order.
    #[must_use]
    pub fn for_disk(&self, disk: DiskId) -> Vec<Arrival> {
        self.arrivals
            .iter()
            .copied()
            .filter(|a| a.disk == disk)
            .collect()
    }

    /// The number of requests that would be concurrently viewing at `t`
    /// if none were ever rejected — the *offered* load (Fig. 6 plots the
    /// serviced load, which saturates at `N` per disk).
    #[must_use]
    pub fn offered_load_at(&self, t: Instant) -> usize {
        self.arrivals
            .iter()
            .filter(|a| a.at <= t && a.at + a.viewing > t)
            .count()
    }
}

/// Configuration of the paper's workload model (§5.1).
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Simulated horizon (the paper's figures span a 24-hour day).
    pub duration: Seconds,
    /// Rate-change granularity (30 minutes in the paper).
    pub slot_len: Seconds,
    /// Zipf parameter of the arrival-rate profile (0, 0.5, 1 in §5).
    pub theta: f64,
    /// Peak time of the profile (hour 9 in the paper).
    pub peak: Seconds,
    /// Total expected arrivals over the horizon. The paper does not state
    /// its absolute λ; see `EXPERIMENTS.md` for our calibration.
    pub expected_arrivals: f64,
    /// Upper bound of the uniform viewing-time distribution (120 min).
    pub max_viewing: Seconds,
    /// Number of disks, with Zipf(`disk_theta`) load across them.
    pub disks: usize,
    /// Zipf parameter of the disk-load distribution.
    pub disk_theta: f64,
}

impl WorkloadConfig {
    /// The paper's single-disk environment with profile skew `theta`.
    #[must_use]
    pub fn paper_single_disk(theta: f64, expected_arrivals: f64) -> Self {
        WorkloadConfig {
            duration: Seconds::from_hours(24.0),
            slot_len: Seconds::from_minutes(30.0),
            theta,
            peak: Seconds::from_hours(9.0),
            expected_arrivals,
            max_viewing: Seconds::from_minutes(120.0),
            disks: 1,
            disk_theta: 1.0,
        }
    }

    /// The paper's 10-disk capacity environment with disk-load skew
    /// `disk_theta` and a uniform-in-time arrival profile.
    #[must_use]
    pub fn paper_ten_disk(disk_theta: f64, expected_arrivals: f64) -> Self {
        WorkloadConfig {
            duration: Seconds::from_hours(24.0),
            slot_len: Seconds::from_minutes(30.0),
            theta: 1.0,
            peak: Seconds::from_hours(9.0),
            expected_arrivals,
            max_viewing: Seconds::from_minutes(120.0),
            disks: 10,
            disk_theta,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when any constituent model rejects its
    /// parameters.
    pub fn validate(&self) -> Result<(), ConfigError> {
        RateProfile::zipf_peaked(
            self.duration,
            self.slot_len,
            self.peak,
            self.theta,
            self.expected_arrivals,
        )?;
        Catalog::paper_catalog(self.disks, self.disk_theta)?;
        if !self.max_viewing.is_valid_duration() || self.max_viewing <= Seconds::ZERO {
            return Err(ConfigError::new("max_viewing", "must be positive"));
        }
        Ok(())
    }
}

/// Generates a reproducible workload from a config and a seed.
///
/// # Errors
///
/// Returns [`ConfigError`] when the configuration is invalid.
pub fn generate(config: &WorkloadConfig, seed: u64) -> Result<Workload, ConfigError> {
    config.validate()?;
    let profile = RateProfile::zipf_peaked(
        config.duration,
        config.slot_len,
        config.peak,
        config.theta,
        config.expected_arrivals,
    )?;
    let catalog = Catalog::paper_catalog(config.disks, config.disk_theta)?;
    let mut rng = StdRng::seed_from_u64(seed);

    let times = poisson::piecewise(
        &mut rng,
        profile.slot_rates(),
        profile.slot_len(),
        Instant::ZERO,
    );
    let mut arrivals = Vec::with_capacity(times.len());
    for at in times {
        let video = catalog.sample(&mut rng);
        let viewing = Seconds::from_secs(rng.gen::<f64>() * config.max_viewing.as_secs_f64());
        arrivals.push(Arrival {
            at,
            disk: video.disk,
            video: video.id,
            viewing,
        });
    }
    Ok(Workload { arrivals })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(theta: f64) -> WorkloadConfig {
        WorkloadConfig::paper_single_disk(theta, 1440.0)
    }

    #[test]
    fn generates_roughly_expected_count() {
        let w = generate(&config(1.0), 1).expect("valid");
        let n = w.len() as f64;
        assert!((n - 1440.0).abs() < 4.0 * 1440.0_f64.sqrt(), "count {n}");
    }

    #[test]
    fn same_seed_is_deterministic() {
        let a = generate(&config(0.5), 77).expect("valid");
        let b = generate(&config(0.5), 77).expect("valid");
        assert_eq!(a.arrivals, b.arrivals);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&config(0.5), 1).expect("valid");
        let b = generate(&config(0.5), 2).expect("valid");
        assert_ne!(a.arrivals, b.arrivals);
    }

    #[test]
    fn arrivals_are_sorted_and_within_horizon() {
        let w = generate(&config(0.0), 5).expect("valid");
        for pair in w.arrivals.windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
        for a in &w.arrivals {
            assert!(a.at.as_secs_f64() < 24.0 * 3600.0);
            assert!(a.viewing > Seconds::ZERO);
            assert!(a.viewing <= Seconds::from_minutes(120.0));
        }
    }

    #[test]
    fn skewed_profile_peaks_near_hour_nine() {
        let w = generate(&config(0.0), 9).expect("valid");
        let count_in = |from_h: f64, to_h: f64| {
            w.arrivals
                .iter()
                .filter(|a| {
                    let h = a.at.as_secs_f64() / 3600.0;
                    h >= from_h && h < to_h
                })
                .count()
        };
        let near_peak = count_in(7.0, 11.0);
        let off_peak = count_in(18.0, 22.0);
        assert!(
            near_peak > 3 * off_peak.max(1),
            "near {near_peak}, off {off_peak}"
        );
    }

    #[test]
    fn offered_load_rises_toward_the_peak() {
        let w = generate(&config(0.0), 3).expect("valid");
        let at = |h: f64| w.offered_load_at(Instant::from_secs(h * 3600.0));
        assert!(at(9.5) > at(2.0), "peak {} vs early {}", at(9.5), at(2.0));
    }

    #[test]
    fn ten_disk_traces_cover_disks_with_skew() {
        let cfg = WorkloadConfig::paper_ten_disk(0.0, 4000.0);
        let w = generate(&cfg, 12).expect("valid");
        let d0 = w.for_disk(DiskId::new(0)).len();
        let d9 = w.for_disk(DiskId::new(9)).len();
        assert!(d0 > d9, "hot disk {d0} <= cold disk {d9}");
        let total: usize = (0..10).map(|d| w.for_disk(DiskId::new(d)).len()).sum();
        assert_eq!(total, w.len());
    }

    #[test]
    fn single_disk_traces_target_disk_zero() {
        let w = generate(&config(1.0), 2).expect("valid");
        assert!(w.arrivals.iter().all(|a| a.disk == DiskId::new(0)));
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut c = config(0.5);
        c.max_viewing = Seconds::ZERO;
        assert!(generate(&c, 1).is_err());
        let mut c = config(0.5);
        c.theta = 2.0;
        assert!(generate(&c, 1).is_err());
        let mut c = config(0.5);
        c.disks = 0;
        assert!(generate(&c, 1).is_err());
    }
}
