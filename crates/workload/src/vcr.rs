//! VCR interactions (fast-forward / rewind / skip).
//!
//! Following the paper's §1 (and Dey-Sircar et al., Dan et al.), VCR
//! operations are modelled as **new requests**: the old stream departs and
//! a fresh request arrives at the action instant, continuing the same
//! video. [`with_vcr_actions`] rewrites a base workload accordingly: each
//! viewing is split at Poisson-distributed action times, preserving total
//! viewing time while multiplying the arrival count — which is exactly why
//! initial latency is the paper's measure of VCR responsiveness.

use rand::rngs::StdRng;
use rand::SeedableRng;
use vod_types::{ConfigError, Seconds};

use crate::poisson::exponential_gap;
use crate::trace::{Arrival, Workload};

/// Configuration of VCR behaviour.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VcrConfig {
    /// Mean VCR actions per hour of viewing, per stream (Poisson).
    pub actions_per_hour: f64,
    /// Floor below which a residual segment is dropped rather than
    /// re-requested (a sub-second tail press is churn, not viewing).
    pub min_segment: Seconds,
}

impl VcrConfig {
    /// A moderately fidgety audience: 6 actions per viewing hour.
    #[must_use]
    pub fn fidgety() -> Self {
        VcrConfig {
            actions_per_hour: 6.0,
            min_segment: Seconds::from_secs(1.0),
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for negative/non-finite rates or floors.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.actions_per_hour.is_finite() || self.actions_per_hour < 0.0 {
            return Err(ConfigError::new("actions_per_hour", "must be non-negative"));
        }
        if !self.min_segment.is_valid_duration() {
            return Err(ConfigError::new("min_segment", "must be non-negative"));
        }
        Ok(())
    }
}

/// Splits each viewing of `base` at Poisson VCR-action instants; every
/// segment after the first becomes a new request arriving at the action
/// time. The result is re-sorted by arrival time.
///
/// # Errors
///
/// Returns [`ConfigError`] for an invalid configuration.
pub fn with_vcr_actions(
    base: &Workload,
    cfg: VcrConfig,
    seed: u64,
) -> Result<Workload, ConfigError> {
    cfg.validate()?;
    let mut rng = StdRng::seed_from_u64(seed);
    let rate_per_sec = cfg.actions_per_hour / 3600.0;
    let mut arrivals: Vec<Arrival> = Vec::with_capacity(base.arrivals.len());
    for a in &base.arrivals {
        let mut segment_start = a.at;
        let mut remaining = a.viewing;
        loop {
            let gap = match exponential_gap(&mut rng, rate_per_sec) {
                Some(g) if g < remaining => g,
                _ => {
                    // No further action within this viewing: final segment.
                    arrivals.push(Arrival {
                        at: segment_start,
                        disk: a.disk,
                        video: a.video,
                        viewing: remaining,
                    });
                    break;
                }
            };
            arrivals.push(Arrival {
                at: segment_start,
                disk: a.disk,
                video: a.video,
                viewing: gap,
            });
            segment_start += gap;
            remaining -= gap;
            if remaining < cfg.min_segment {
                break; // drop the sub-floor tail
            }
        }
    }
    arrivals.sort_by_key(|a| a.at);
    Ok(Workload { arrivals })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{generate, WorkloadConfig};

    fn base() -> Workload {
        let mut cfg = WorkloadConfig::paper_single_disk(1.0, 120.0);
        cfg.duration = Seconds::from_hours(4.0);
        cfg.peak = Seconds::from_hours(1.0);
        generate(&cfg, 3).expect("valid workload config")
    }

    #[test]
    fn zero_rate_is_identity() {
        let w = base();
        let out = with_vcr_actions(
            &w,
            VcrConfig {
                actions_per_hour: 0.0,
                min_segment: Seconds::from_secs(1.0),
            },
            1,
        )
        .expect("valid");
        assert_eq!(out.arrivals, w.arrivals);
    }

    #[test]
    fn actions_multiply_arrivals_and_preserve_viewing() {
        let w = base();
        let out = with_vcr_actions(&w, VcrConfig::fidgety(), 7).expect("valid");
        assert!(
            out.len() > w.len(),
            "fidgety viewers must create extra requests: {} vs {}",
            out.len(),
            w.len()
        );
        let total =
            |wl: &Workload| -> f64 { wl.arrivals.iter().map(|a| a.viewing.as_secs_f64()).sum() };
        // Viewing is preserved up to the dropped sub-floor tails.
        let before = total(&w);
        let after = total(&out);
        assert!(after <= before + 1e-6);
        assert!(after > before * 0.98, "before {before}, after {after}");
    }

    #[test]
    fn output_is_sorted_and_segments_chain() {
        let w = base();
        let out = with_vcr_actions(&w, VcrConfig::fidgety(), 11).expect("valid");
        for pair in out.arrivals.windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
        for a in &out.arrivals {
            assert!(a.viewing > Seconds::ZERO);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let w = base();
        let a = with_vcr_actions(&w, VcrConfig::fidgety(), 5).expect("valid");
        let b = with_vcr_actions(&w, VcrConfig::fidgety(), 5).expect("valid");
        let c = with_vcr_actions(&w, VcrConfig::fidgety(), 6).expect("valid");
        assert_eq!(a.arrivals, b.arrivals);
        assert_ne!(a.arrivals, c.arrivals);
    }

    #[test]
    fn rejects_bad_config() {
        let w = base();
        assert!(with_vcr_actions(
            &w,
            VcrConfig {
                actions_per_hour: -1.0,
                min_segment: Seconds::ZERO
            },
            1
        )
        .is_err());
    }
}
