//! The Zipf distribution, in the parameterization of Wolf, Yu &
//! Shachnai that the paper adopts (§5.1).
//!
//! Rank `i ∈ {1, …, m}` has weight `(1/i)^(1−θ)`:
//!
//! * `θ = 0` — the classic (highly skewed) Zipf law `p_i ∝ 1/i`;
//! * `θ = 1` — the uniform distribution;
//! * `θ = 0.271` — the skew Wolf et al. measured for video popularity.

use rand::Rng;
use vod_types::ConfigError;

/// A Zipf(θ) distribution over ranks `1..=m`.
#[derive(Clone, Debug)]
pub struct Zipf {
    /// `p[i]` is the probability of rank `i + 1`.
    pmf: Vec<f64>,
    /// Cumulative distribution for sampling.
    cdf: Vec<f64>,
    theta: f64,
}

impl Zipf {
    /// Builds the distribution over `m ≥ 1` ranks with skew parameter
    /// `θ ∈ [0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for `m = 0` or `θ` outside `[0, 1]`.
    pub fn new(m: usize, theta: f64) -> Result<Self, ConfigError> {
        if m == 0 {
            return Err(ConfigError::new("zipf_ranks", "must be at least 1"));
        }
        if !(0.0..=1.0).contains(&theta) {
            return Err(ConfigError::new(
                "zipf_theta",
                format!("θ = {theta} outside [0, 1]"),
            ));
        }
        let exponent = 1.0 - theta;
        let mut pmf: Vec<f64> = (1..=m).map(|i| (i as f64).powf(-exponent)).collect();
        let total: f64 = pmf.iter().sum();
        for p in &mut pmf {
            *p /= total;
        }
        let mut cdf = Vec::with_capacity(m);
        let mut acc = 0.0;
        for &p in &pmf {
            acc += p;
            cdf.push(acc);
        }
        // Guard the tail against accumulated rounding.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Ok(Zipf { pmf, cdf, theta })
    }

    /// Number of ranks.
    #[must_use]
    pub fn ranks(&self) -> usize {
        self.pmf.len()
    }

    /// The skew parameter θ.
    #[must_use]
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Probability of rank `i ∈ 1..=m`; 0 outside the range.
    #[must_use]
    pub fn probability(&self, rank: usize) -> f64 {
        if rank == 0 {
            return 0.0;
        }
        self.pmf.get(rank - 1).copied().unwrap_or(0.0)
    }

    /// The probability vector, ranks 1.. in order.
    #[must_use]
    pub fn probabilities(&self) -> &[f64] {
        &self.pmf
    }

    /// Samples a rank in `1..=m`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).unwrap_or(std::cmp::Ordering::Equal))
        {
            Ok(idx) | Err(idx) => (idx + 1).min(self.pmf.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn probabilities_sum_to_one() {
        for theta in [0.0, 0.271, 0.5, 1.0] {
            let z = Zipf::new(10, theta).expect("valid");
            let total: f64 = z.probabilities().iter().sum();
            assert!((total - 1.0).abs() < 1e-12, "θ={theta}");
        }
    }

    #[test]
    fn theta_one_is_uniform() {
        let z = Zipf::new(8, 1.0).expect("valid");
        for i in 1..=8 {
            assert!((z.probability(i) - 0.125).abs() < 1e-12);
        }
    }

    #[test]
    fn theta_zero_is_classic_zipf() {
        let z = Zipf::new(4, 0.0).expect("valid");
        // p_i ∝ 1/i over {1, 1/2, 1/3, 1/4}; H = 25/12.
        let h = 1.0 + 0.5 + 1.0 / 3.0 + 0.25;
        assert!((z.probability(1) - 1.0 / h).abs() < 1e-12);
        assert!((z.probability(4) - 0.25 / h).abs() < 1e-12);
    }

    #[test]
    fn smaller_theta_is_more_skewed() {
        let skewed = Zipf::new(10, 0.0).expect("valid");
        let mild = Zipf::new(10, 0.5).expect("valid");
        assert!(skewed.probability(1) > mild.probability(1));
        assert!(skewed.probability(10) < mild.probability(10));
    }

    #[test]
    fn probabilities_are_nonincreasing_in_rank() {
        let z = Zipf::new(20, 0.271).expect("valid");
        for i in 1..20 {
            assert!(z.probability(i) >= z.probability(i + 1));
        }
    }

    #[test]
    fn out_of_range_ranks_have_zero_probability() {
        let z = Zipf::new(5, 0.5).expect("valid");
        assert_eq!(z.probability(0), 0.0);
        assert_eq!(z.probability(6), 0.0);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(Zipf::new(0, 0.5).is_err());
        assert!(Zipf::new(5, -0.1).is_err());
        assert!(Zipf::new(5, 1.1).is_err());
    }

    #[test]
    fn sampling_matches_pmf() {
        let z = Zipf::new(5, 0.0).expect("valid");
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 5];
        let draws = 200_000;
        for _ in 0..draws {
            let r = z.sample(&mut rng);
            assert!((1..=5).contains(&r));
            counts[r - 1] += 1;
        }
        for i in 1..=5 {
            let empirical = counts[i - 1] as f64 / draws as f64;
            let expected = z.probability(i);
            assert!(
                (empirical - expected).abs() < 0.01,
                "rank {i}: empirical {empirical}, expected {expected}"
            );
        }
    }

    #[test]
    fn single_rank_always_samples_one() {
        let z = Zipf::new(1, 0.7).expect("valid");
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 1);
        }
    }
}
