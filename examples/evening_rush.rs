//! Evening rush: simulate a single-disk VOD server through a peaked
//! arrival day (the paper's Zipf(θ = 0) profile) and compare the static
//! and dynamic schemes on initial latency and memory.
//!
//! ```text
//! cargo run --release --example evening_rush
//! ```

use vod::core::SchemeKind;
use vod::prelude::*;

fn main() {
    // A 24-hour day whose arrival rate peaks at hour 9 (θ = 0: sharply
    // peaked — everyone tunes in for the evening film).
    let workload_cfg = WorkloadConfig::paper_single_disk(0.0, 1440.0);
    let workload = generate(&workload_cfg, 42).expect("valid workload config");
    println!(
        "workload: {} requests over 24 h, peak at hour 9\n",
        workload.len()
    );

    for scheme in [SchemeKind::Static, SchemeKind::Dynamic] {
        let engine = DiskEngine::new(EngineConfig::paper(SchedulingMethod::RoundRobin, scheme))
            .expect("paper parameters are feasible");
        let stats = engine.run(&workload.arrivals);

        let mean_il = stats
            .mean_latency()
            .map_or("n/a".to_owned(), |s| format!("{s}"));
        println!("{scheme}:");
        println!(
            "  admitted {} / rejected {}",
            stats.admitted, stats.rejected
        );
        println!("  deferrals (predict-and-enforce): {}", stats.deferrals);
        println!("  mean initial latency: {mean_il}");
        println!("  peak buffer memory:   {}", stats.peak_memory);
        println!("  buffer underflows:    {}", stats.underflows);
        println!("  disk services:        {}", stats.services);

        // Latency by load level — the dynamic scheme's advantage lives at
        // partial load.
        print!("  mean IL by load: ");
        for (lo, label) in [(1usize, "n~1-20"), (21, "n~21-40"), (41, "n~41-60")] {
            let by_load = stats.latency_by_load(79);
            let mut total = 0.0;
            let mut count = 0usize;
            for (c, m) in by_load[lo..lo + 19].iter() {
                if let Some(m) = m {
                    total += m.as_secs_f64() * *c as f64;
                    count += c;
                }
            }
            if count > 0 {
                print!("{label}: {:.2}s  ", total / count as f64);
            }
        }
        println!("\n");
    }
    println!(
        "Off-peak, the dynamic scheme answers an order of magnitude faster\n\
         (the n~1-40 rows) — the paper's Fig. 11 story. Peak memory matches\n\
         because both schemes converge at full load; run with θ = 1.0 (or\n\
         fewer arrivals) to see the partial-load memory gap of Fig. 12."
    );
}
