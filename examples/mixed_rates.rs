//! Mixed display rates (the paper's footnote 2): serve a palette of
//! MPEG-1 (1.5 Mbps), MPEG-2 SD (3 Mbps), and HD (6 Mbps) streams from
//! one disk, comparing the *maximal-rate* and *unit-rate* adaptations —
//! and stress the admission pipeline with a fidgety, VCR-happy audience.
//!
//! ```text
//! cargo run --release --example mixed_rates
//! ```

use vod::core::multirate::{MultiRateSystem, RateAdaptation};
use vod::core::{SchemeKind, SizeTable};
use vod::prelude::*;
use vod::workload::{with_vcr_actions, VcrConfig};

fn main() {
    let palette = [
        ("MPEG-1", BitRate::from_mbps(1.5)),
        ("SD", BitRate::from_mbps(3.0)),
        ("HD", BitRate::from_mbps(6.0)),
    ];
    let rates: Vec<BitRate> = palette.iter().map(|&(_, r)| r).collect();

    println!("rate palette: 1.5 / 3.0 / 6.0 Mbps on one Barracuda 9LP\n");
    for strategy in [RateAdaptation::MaximalRate, RateAdaptation::UnitRate] {
        let sys = MultiRateSystem::new(
            DiskProfile::barracuda_9lp(),
            SchedulingMethod::RoundRobin,
            1,
            &rates,
            strategy,
        )
        .expect("feasible palette");
        let table = SizeTable::build(sys.params());
        println!(
            "{strategy:?}: base rate {}, {} virtual slots",
            sys.base_rate(),
            sys.params().max_requests()
        );
        for &(name, r) in &palette {
            let slots = sys.virtual_streams(r).expect("rate in palette");
            let max = sys.max_requests_at(r).expect("rate in palette");
            let bs = sys.buffer_size(&table, 20, 2, r).expect("rate in palette");
            println!(
                "  {name:<7} -> {slots} slot(s), up to {max:>2} alone, \
                 buffer {bs} at (n=20, k=2)"
            );
        }
        println!();
    }

    // The unit-rate adaptation composes with the rest of the machinery:
    // run the regular (unit-rate) engine under a VCR-heavy audience to
    // see how interactive viewing stresses admission.
    let base = generate(&WorkloadConfig::paper_single_disk(1.0, 300.0), 21)
        .expect("valid workload config");
    let fidgety = with_vcr_actions(&base, VcrConfig::fidgety(), 9).expect("valid VCR config");
    println!(
        "VCR audience: {} base viewings become {} requests (each skip is a new request)",
        base.len(),
        fidgety.len()
    );
    for scheme in [SchemeKind::Static, SchemeKind::Dynamic] {
        let stats = DiskEngine::new(EngineConfig::paper(SchedulingMethod::RoundRobin, scheme))
            .expect("paper parameters are feasible")
            .run(&fidgety.arrivals);
        println!(
            "  {scheme:<8} mean IL {} | p95 {} | deferrals {} | underflows {}",
            stats.mean_latency().expect("samples"),
            stats.latency_percentile(0.95).expect("samples"),
            stats.deferrals,
            stats.underflows,
        );
    }
}
