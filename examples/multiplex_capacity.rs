//! Capacity planning for a 10-disk VOD multiplex: how many concurrent
//! viewers can each buffer allocation scheme sustain for a given amount
//! of server memory, when video popularity skews the per-disk load?
//!
//! Reproduces the Fig. 13/14 experiment as a planning tool.
//!
//! ```text
//! cargo run --release --example multiplex_capacity
//! ```

use vod::analysis::fig13_capacity;
use vod::core::SchemeKind;
use vod::prelude::*;

fn main() {
    let params = SystemParams::paper_defaults(SchedulingMethod::RoundRobin);
    let disks = 10;
    // Wolf et al. measured θ = 0.271 for real video popularity; the
    // paper's figures bracket it with θ ∈ {0, 0.5, 1}.
    let theta = 0.271;
    let memories: Vec<Bits> = (1..=11)
        .map(|g| Bits::from_gigabytes(f64::from(g)))
        .collect();

    println!("10 × {} | disk-load skew θ = {theta}\n", params.disk.name);

    // Analytic capacity (Theorems 2–4 as the reservation rule).
    let analytic_static = fig13_capacity(&params, SchemeKind::Static, disks, theta, &memories);
    let analytic_dynamic = fig13_capacity(&params, SchemeKind::Dynamic, disks, theta, &memories);

    // Simulated capacity on a generated day of traffic.
    let mut wl_cfg = WorkloadConfig::paper_ten_disk(theta, 20_000.0);
    wl_cfg.disk_theta = theta;
    let workload = generate(&wl_cfg, 7).expect("valid workload config");

    println!("memory   static(analysis)  dynamic(analysis)  static(sim)  dynamic(sim)");
    for (i, mem) in memories.iter().enumerate() {
        let mut sim_counts = [0usize; 2];
        for (j, scheme) in [SchemeKind::Static, SchemeKind::Dynamic].iter().enumerate() {
            let sim = CapacitySim::new(CapacityConfig {
                params: params.clone(),
                scheme: *scheme,
                disks,
                total_memory: *mem,
                t_log: Seconds::from_minutes(40.0),
            })
            .expect("valid capacity config");
            sim_counts[j] = sim.run(&workload).max_concurrent;
        }
        println!(
            "{:>5.0} GB {:>12} {:>18} {:>12} {:>13}",
            mem.as_gigabytes(),
            analytic_static[i].concurrent,
            analytic_dynamic[i].concurrent,
            sim_counts[0],
            sim_counts[1],
        );
    }

    let improvement: f64 = memories
        .iter()
        .enumerate()
        .filter(|(i, _)| analytic_static[*i].concurrent > 0)
        .map(|(i, _)| analytic_dynamic[i].concurrent as f64 / analytic_static[i].concurrent as f64)
        .sum::<f64>()
        / memories.len() as f64;
    println!(
        "\naverage improvement (analysis): {improvement:.2}x — the paper's \
         Table 5 band is 2.36–3.25x"
    );
}
