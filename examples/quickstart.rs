//! Quickstart: size buffers statically vs. dynamically for the paper's
//! reference VOD server, and watch the admission controller enforce the
//! inertia assumptions.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use vod::core::static_scheme;
use vod::prelude::*;

fn main() {
    // The paper's environment (Table 3): one Seagate Barracuda 9LP
    // serving 1.5 Mbps MPEG-1 streams, scheduled round-robin (BubbleUp).
    let params = SystemParams::paper_defaults(SchedulingMethod::RoundRobin);
    let n_max = params.max_requests();
    println!("disk: {}", params.disk.name);
    println!("max concurrent streams N = {n_max}\n");

    // The static scheme allocates the full-load size BS(N) to everyone.
    let static_size = static_scheme::static_allocated_size(&params);
    println!("static scheme allocates {static_size} per stream, always\n");

    // The dynamic scheme sizes for the current load (n streams in
    // service, k estimated additional requests): Theorem 1, precomputed.
    let table = SizeTable::build(&params);
    println!("dynamic scheme allocation BS_k(n) (k = 2):");
    for n in [1usize, 5, 10, 20, 40, 60, 79] {
        let bs = table.size(n, 2);
        println!(
            "  n = {n:>2}  ->  {bs}  ({:.1}% of static)",
            100.0 * bs.as_f64() / static_size.as_f64()
        );
    }

    // Predict-and-enforce at runtime: the admission controller defers a
    // burst that would violate Assumption 1 for in-service buffers.
    let mut ctl = AdmissionController::new(params, Seconds::from_minutes(40.0))
        .expect("paper parameters are feasible");
    let t0 = Instant::ZERO;
    let period = Seconds::from_secs(2.0);

    ctl.note_arrival(t0);
    ctl.admit(RequestId::new(0)).expect("idle system admits");
    let alloc = ctl
        .allocate(RequestId::new(0), t0, period)
        .expect("admitted");
    println!(
        "\nfirst stream allocated at (n = {}, k = {}): {}",
        alloc.n,
        alloc.k,
        ctl.size_of(alloc)
    );

    let mut admitted = 0;
    let mut deferred = 0;
    for i in 1..10u64 {
        ctl.note_arrival(t0);
        match ctl.admit(RequestId::new(i)) {
            Ok(()) => admitted += 1,
            Err(_) => deferred += 1,
        }
    }
    println!(
        "burst of 9 arrivals: {admitted} admitted, {deferred} deferred \
         (Assumption 1 protects the in-service buffer)"
    );
}
