//! VCR responsiveness: in most VOD systems a fast-forward or rewind is a
//! *new* request (the paper's §1), so initial latency is the response
//! time of every VCR button press. This example measures how snappy the
//! buttons feel under each scheme and scheduling method as the house
//! fills up.
//!
//! ```text
//! cargo run --release --example vcr_latency
//! ```

use vod::core::{static_scheme, SchemeKind, SizeTable};
use vod::prelude::*;
use vod::sched::worst_initial_latency;

fn main() {
    println!("Worst-case VCR response time (Eqs. 2-4), seconds:\n");
    println!(
        "{:<14} {:>7} {:>18} {:>18}",
        "method", "viewers", "static scheme", "dynamic scheme"
    );

    for method in SchedulingMethod::paper_methods() {
        let params = SystemParams::paper_defaults(method);
        let table = SizeTable::build(&params);
        let static_bs = static_scheme::static_allocated_size(&params);
        for n in [5usize, 40, 79] {
            let k = 2;
            let il_static = worst_initial_latency(method, &params.disk, static_bs, n);
            let il_dynamic = worst_initial_latency(method, &params.disk, table.size(n, k), n);
            println!(
                "{:<14} {:>7} {:>17.3}s {:>17.3}s",
                method.to_string(),
                n,
                il_static.as_secs_f64(),
                il_dynamic.as_secs_f64(),
            );
        }
        println!();
    }

    // And the felt experience: simulate a binge-watcher skipping ahead
    // every few minutes while 20 other streams play. Each skip is a
    // departure plus a new request.
    println!("Simulated: a viewer pressing skip every 3 minutes while 20 others watch");
    for scheme in [SchemeKind::Static, SchemeKind::Dynamic] {
        let engine = DiskEngine::new(EngineConfig::paper(SchedulingMethod::RoundRobin, scheme))
            .expect("paper parameters are feasible");

        // 20 long-running background streams, then one viewer re-arriving
        // every 3 minutes (each press = depart + rejoin).
        let mut arrivals = Vec::new();
        for i in 0..20u64 {
            arrivals.push(vod::workload::Arrival {
                at: Instant::from_secs(f64::from(i as u32)),
                disk: vod::types::DiskId::new(0),
                video: VideoId::new(i % 6),
                viewing: Seconds::from_hours(1.5),
            });
        }
        for press in 0..20u32 {
            arrivals.push(vod::workload::Arrival {
                at: Instant::from_secs(60.0 + f64::from(press) * 180.0),
                disk: vod::types::DiskId::new(0),
                video: VideoId::new(0),
                viewing: Seconds::from_secs(175.0),
            });
        }
        arrivals.sort_by_key(|a| a.at);
        let stats = engine.run(&arrivals);

        // The skipper's samples are the ones arriving at n ≈ 20.
        let skips: Vec<f64> = stats
            .il_samples
            .iter()
            .filter(|s| s.n_at_arrival >= 19)
            .map(|s| s.latency.as_secs_f64())
            .collect();
        let mean = skips.iter().sum::<f64>() / skips.len().max(1) as f64;
        println!(
            "  {scheme:<14} {} skips, mean response {:.3}s",
            skips.len(),
            mean
        );
    }
}
