//! # vod — dynamic buffer allocation for video-on-demand systems
//!
//! A full reproduction of *Lee, Whang, Moon, Han, Song — "Dynamic Buffer
//! Allocation in Video-on-Demand Systems"* (SIGMOD 2001 / IEEE TKDE
//! 15(6), 2003) as a reusable Rust library.
//!
//! This crate is the facade: it re-exports the workspace's crates under
//! one roof. Start with [`core`] (the paper's contribution — the
//! predict-and-enforce dynamic buffer allocation scheme), then [`sim`]
//! (the discrete-event server simulator used for the paper's evaluation).
//!
//! ```
//! use vod::prelude::*;
//!
//! // A Barracuda 9LP serving 1.5 Mbps MPEG-1 streams (the paper's
//! // environment), scheduled round-robin with BubbleUp:
//! let params = SystemParams::paper_defaults(SchedulingMethod::RoundRobin);
//! assert_eq!(params.max_requests(), 79);
//!
//! // The precomputed Theorem-1 size table:
//! let table = SizeTable::build(&params);
//! let lightly_loaded = table.size(5, 2);
//! let fully_loaded = table.size(79, 0);
//! assert!(lightly_loaded.as_f64() < 0.02 * fully_loaded.as_f64());
//! ```
//!
//! The `repro` binary (`cargo run -p vod-bench --release --bin repro --
//! all`) regenerates every table and figure; see `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use vod_analysis as analysis;
pub use vod_buffer as buffer;
pub use vod_core as core;
pub use vod_disk as disk;
pub use vod_obs as obs;
pub use vod_sched as sched;
pub use vod_sim as sim;
pub use vod_types as types;
pub use vod_workload as workload;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use vod_buffer::{BufferPool, PoolConfig};
    pub use vod_core::{
        AdmissionController, ArrivalLog, MultiRateSystem, RateAdaptation, SchemeKind, SizeTable,
        SystemParams,
    };
    pub use vod_disk::{Disk, DiskArray, DiskProfile, LatencyModel, ZonedProfile};
    pub use vod_obs::{
        Metrics, MetricsRegistry, MetricsServer, Obs, RecorderSink, Sink, StderrSink, Timed,
    };
    pub use vod_sched::SchedulingMethod;
    pub use vod_sim::{run_multi_disk, CapacityConfig, CapacitySim, DiskEngine, EngineConfig};
    pub use vod_types::{BitRate, Bits, Instant, RequestId, Seconds, VideoId};
    pub use vod_workload::{generate, with_vcr_actions, VcrConfig, Workload, WorkloadConfig};
}
