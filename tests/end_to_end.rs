//! End-to-end runs of the full stack: workload generation → buffer-level
//! simulation → measurements, across every scheme × scheduling method.

use vod::core::SchemeKind;
use vod::prelude::*;
use vod::types::Seconds as S;

fn two_hour_workload(theta: f64, arrivals: f64, seed: u64) -> Workload {
    let mut cfg = WorkloadConfig::paper_single_disk(theta, arrivals);
    cfg.duration = S::from_hours(2.0);
    cfg.peak = S::from_hours(0.75);
    generate(&cfg, seed).expect("valid workload config")
}

#[test]
fn every_scheme_and_method_runs_clean_at_partial_load() {
    let workload = two_hour_workload(1.0, 60.0, 3);
    for method in SchedulingMethod::paper_methods() {
        for scheme in [
            SchemeKind::Static,
            SchemeKind::StaticMaxUse,
            SchemeKind::Dynamic,
        ] {
            let engine = DiskEngine::new(EngineConfig::paper(method, scheme))
                .expect("paper parameters are feasible");
            let stats = engine.run(&workload.arrivals);
            assert_eq!(
                stats.underflows, 0,
                "{scheme} under {method} must never starve a stream"
            );
            assert!(stats.admitted > 0, "{scheme} under {method}");
            assert_eq!(
                stats.admitted + stats.rejected,
                workload.len() as u64,
                "{scheme} under {method}: every request accounted for"
            );
            assert!(stats.max_concurrent() <= 79);
            assert!(!stats.il_samples.is_empty());
        }
    }
}

#[test]
fn identical_traces_give_identical_measurements() {
    let workload = two_hour_workload(0.5, 80.0, 9);
    let run = || {
        DiskEngine::new(EngineConfig::paper(
            SchedulingMethod::GSS_PAPER,
            SchemeKind::Dynamic,
        ))
        .expect("valid")
        .run(&workload.arrivals)
    };
    let a = run();
    let b = run();
    assert_eq!(a.il_samples, b.il_samples);
    assert_eq!(a.services, b.services);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.peak_memory, b.peak_memory);
    assert_eq!(a.deferrals, b.deferrals);
}

#[test]
fn dynamic_scheme_wins_on_latency_at_partial_load() {
    let workload = two_hour_workload(1.0, 40.0, 5);
    for method in SchedulingMethod::paper_methods() {
        let mut means = Vec::new();
        for scheme in [SchemeKind::Static, SchemeKind::Dynamic] {
            let stats = DiskEngine::new(EngineConfig::paper(method, scheme))
                .expect("valid")
                .run(&workload.arrivals);
            means.push(stats.mean_latency().expect("samples").as_secs_f64());
        }
        assert!(
            means[1] < means[0] / 2.0,
            "{method}: dynamic {} not well below static {}",
            means[1],
            means[0]
        );
    }
}

#[test]
fn dynamic_scheme_wins_on_memory_at_partial_load() {
    let workload = two_hour_workload(1.0, 40.0, 6);
    for method in SchedulingMethod::paper_methods() {
        let static_peak = DiskEngine::new(EngineConfig::paper(method, SchemeKind::Static))
            .expect("valid")
            .run(&workload.arrivals)
            .peak_memory;
        let dynamic_peak = DiskEngine::new(EngineConfig::paper(method, SchemeKind::Dynamic))
            .expect("valid")
            .run(&workload.arrivals)
            .peak_memory;
        assert!(
            dynamic_peak.as_f64() < 0.5 * static_peak.as_f64(),
            "{method}: dynamic {dynamic_peak} vs static {static_peak}"
        );
    }
}

#[test]
fn ten_disk_capacity_ordering_holds_in_simulation() {
    let mut cfg = WorkloadConfig::paper_ten_disk(0.5, 6_000.0);
    cfg.duration = S::from_hours(6.0);
    cfg.peak = S::from_hours(2.0);
    let workload = generate(&cfg, 11).expect("valid workload config");
    let run = |scheme| {
        CapacitySim::new(CapacityConfig {
            params: SystemParams::paper_defaults(SchedulingMethod::RoundRobin),
            scheme,
            disks: 10,
            total_memory: Bits::from_gigabytes(3.0),
            t_log: S::from_minutes(40.0),
        })
        .expect("valid")
        .run(&workload)
    };
    let st = run(SchemeKind::Static);
    let dy = run(SchemeKind::Dynamic);
    assert!(
        dy.max_concurrent > st.max_concurrent,
        "dynamic {} vs static {}",
        dy.max_concurrent,
        st.max_concurrent
    );
    assert!(st.peak_reserved <= Bits::from_gigabytes(3.0));
    assert!(dy.peak_reserved <= Bits::from_gigabytes(3.0));
}

#[test]
fn saturated_disk_rejects_and_recovers() {
    // Saturate then let the wave pass: late arrivals must be admitted
    // again after departures.
    let mut arrivals = Vec::new();
    for i in 0..100u64 {
        arrivals.push(vod::workload::Arrival {
            at: Instant::from_secs(1.0 + f64::from(i as u32) * 0.05),
            disk: vod::types::DiskId::new(0),
            video: VideoId::new(i % 6),
            viewing: S::from_secs(120.0),
        });
    }
    // A latecomer after the wave departs.
    arrivals.push(vod::workload::Arrival {
        at: Instant::from_secs(400.0),
        disk: vod::types::DiskId::new(0),
        video: VideoId::new(0),
        viewing: S::from_secs(60.0),
    });
    let stats = DiskEngine::new(EngineConfig::paper(
        SchedulingMethod::RoundRobin,
        SchemeKind::Static,
    ))
    .expect("valid")
    .run(&arrivals);
    assert!(stats.rejected >= 21, "wave overflows N=79");
    assert_eq!(stats.admitted + stats.rejected, 101);
    // The latecomer is among the admitted (system drained by t=400).
    let late = stats
        .il_samples
        .iter()
        .find(|s| s.arrived >= Instant::from_secs(399.0));
    assert!(late.is_some(), "latecomer serviced after recovery");
}

#[test]
fn vcr_heavy_audience_never_starves_a_buffer() {
    // VCR actions create rapid departure+arrival churn — the admission
    // path's hardest case (this once exposed an insertion-budget bug).
    let base = {
        let mut cfg = WorkloadConfig::paper_single_disk(1.0, 200.0);
        cfg.duration = S::from_hours(6.0);
        cfg.peak = S::from_hours(2.0);
        generate(&cfg, 21).expect("valid workload config")
    };
    let fidgety = vod::workload::with_vcr_actions(&base, vod::workload::VcrConfig::fidgety(), 9)
        .expect("valid VCR config");
    assert!(fidgety.len() > 2 * base.len(), "VCR must multiply requests");
    for method in SchedulingMethod::paper_methods() {
        for scheme in [SchemeKind::Static, SchemeKind::Dynamic] {
            let stats = DiskEngine::new(EngineConfig::paper(method, scheme))
                .expect("valid")
                .run(&fidgety.arrivals);
            assert_eq!(stats.underflows, 0, "{scheme} under {method}");
            assert_eq!(
                stats.admitted + stats.rejected,
                fidgety.len() as u64,
                "{scheme} under {method}"
            );
        }
    }
}

#[test]
fn sampled_seek_mode_matches_worst_case_admissions() {
    let workload = two_hour_workload(1.0, 60.0, 13);
    for method in SchedulingMethod::paper_methods() {
        let mut cfg = EngineConfig::paper(method, SchemeKind::Dynamic);
        cfg.latency_model = vod::disk::LatencyModel::Sampled;
        let sampled = DiskEngine::new(cfg).expect("valid").run(&workload.arrivals);
        let worst = DiskEngine::new(EngineConfig::paper(method, SchemeKind::Dynamic))
            .expect("valid")
            .run(&workload.arrivals);
        assert_eq!(sampled.underflows, 0, "{method}");
        assert_eq!(sampled.admitted, worst.admitted, "{method}");
        // Real seeks are shorter than the worst case the buffers assume.
        let s = sampled.mean_latency().expect("samples");
        let w = worst.mean_latency().expect("samples");
        assert!(
            s.as_secs_f64() <= w.as_secs_f64() * 1.1,
            "{method}: sampled {s} vs worst {w}"
        );
    }
}
