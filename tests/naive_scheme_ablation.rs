//! The Fig. 3 ablation: the *naive* dynamic scheme (`BS(n + k)` by
//! Eq. 5, no recurrence, no enforcement) under-sizes buffers whenever the
//! load is about to grow — the very flaw that motivates Theorem 1.

use vod::core::scheme::Sizer;
use vod::core::{SchemeKind, SystemParams};
use vod::prelude::*;
use vod::types::Seconds as S;

/// A steadily climbing load: arrivals every few seconds for an hour, each
/// watching long enough that the roster only grows. This is exactly the
/// Fig. 3 scenario — every buffer allocated now will be outlived by
/// bigger future buffers.
fn rising_load() -> Vec<vod::workload::Arrival> {
    (0..70u64)
        .map(|i| vod::workload::Arrival {
            at: Instant::from_secs(1.0 + f64::from(i as u32) * 40.0),
            disk: vod::types::DiskId::new(0),
            video: VideoId::new(i % 6),
            viewing: S::from_hours(1.5),
        })
        .collect()
}

#[test]
fn naive_sizes_are_strictly_below_theorem1_sizes_at_partial_load() {
    let params = SystemParams::paper_defaults(SchedulingMethod::RoundRobin);
    let naive = Sizer::new(SchemeKind::NaiveDynamic, &params).expect("valid");
    let dynamic = Sizer::new(SchemeKind::Dynamic, &params).expect("valid");
    for n in 1..=70usize {
        let k = 3;
        assert!(
            naive.size(n, k) < dynamic.size(n, k),
            "n={n}: naive {} not below Theorem 1's {}",
            naive.size(n, k),
            dynamic.size(n, k)
        );
    }
}

#[test]
fn naive_scheme_underflows_under_rising_load_where_dynamic_does_not() {
    let arrivals = rising_load();

    let run = |scheme| {
        DiskEngine::new(EngineConfig::paper(SchedulingMethod::RoundRobin, scheme))
            .expect("valid")
            .run(&arrivals)
    };

    let dynamic = run(SchemeKind::Dynamic);
    assert_eq!(
        dynamic.underflows, 0,
        "predict-and-enforce must keep every buffer fed"
    );

    let naive = run(SchemeKind::NaiveDynamic);
    assert!(
        naive.underflows > 0,
        "the Fig. 3 scheme must starve buffers as the load grows \
         (deficit {})",
        naive.underflow_deficit
    );
}

#[test]
fn naive_deficit_is_material_not_float_noise() {
    let arrivals = rising_load();
    let naive = DiskEngine::new(EngineConfig::paper(
        SchedulingMethod::RoundRobin,
        SchemeKind::NaiveDynamic,
    ))
    .expect("valid")
    .run(&arrivals);
    // The paper's point: the gap is the data consumed during (T1 − T1')
    // of Fig. 3 — whole kilobits per event, not rounding dust.
    if naive.underflows > 0 {
        let mean_deficit = naive.underflow_deficit.as_f64() / naive.underflows as f64;
        assert!(
            mean_deficit > 1_000.0,
            "mean deficit {mean_deficit} bits is suspiciously small"
        );
    }
}
