//! The paper's headline quantities, checked end-to-end through the
//! public facade: Table 3's derived constants, the Fig. 9/10/12 scales,
//! and the Table 5 improvement band.

use vod::analysis::{fig13_capacity, fig9_buffer_sizes};
use vod::core::{static_scheme, SchemeKind};
use vod::prelude::*;

#[test]
fn table3_constants() {
    let params = SystemParams::paper_defaults(SchedulingMethod::RoundRobin);
    assert_eq!(params.max_requests(), 79, "Eq. 1 with TR=120, CR=1.5 Mbps");
    assert_eq!(params.disk.rpm, 7200);
    assert!((params.disk.seek.max_rotational_delay.as_millis() - 8.33).abs() < 1e-9);
}

#[test]
fn full_load_buffer_is_about_28_megabytes() {
    // Fig. 9a's static plateau.
    let params = SystemParams::paper_defaults(SchedulingMethod::RoundRobin);
    let bs = static_scheme::static_allocated_size(&params);
    let mb = bs.as_bytes() / 1.0e6;
    assert!((mb - 28.2).abs() < 0.5, "BS(79) = {mb} MB");
}

#[test]
fn dynamic_buffers_are_tiny_at_light_load() {
    // Fig. 9: at n = 10 the dynamic buffer is under 1% of the static one.
    let series = fig9_buffer_sizes(SchedulingMethod::RoundRobin);
    let (n, st, dy) = series.points[9];
    assert_eq!(n, 10);
    assert!(dy / st < 0.01, "ratio {}", dy / st);
}

#[test]
fn fig13_crossover_is_near_eleven_gigabytes() {
    // §5.3: with ~11 GB both schemes hit the 790-stream disk limit.
    let params = SystemParams::paper_defaults(SchedulingMethod::RoundRobin);
    let at = |gb: f64, scheme| {
        fig13_capacity(&params, scheme, 10, 1.0, &[Bits::from_gigabytes(gb)])[0].concurrent
    };
    assert!(at(6.0, SchemeKind::Static) < 700);
    assert_eq!(at(12.0, SchemeKind::Static), 790);
    assert_eq!(at(12.0, SchemeKind::Dynamic), 790);
}

#[test]
fn table5_improvement_band() {
    // Averaged over 1–11 GB, the dynamic scheme serves 2.36–3.25× the
    // static scheme's streams. Allow a band around the paper's numbers
    // (our substituted cylinder count and integer rounding shift it).
    let params = SystemParams::paper_defaults(SchedulingMethod::RoundRobin);
    let memories: Vec<Bits> = (1..=11)
        .map(|g| Bits::from_gigabytes(f64::from(g)))
        .collect();
    for (theta, expect) in [(0.0, 2.36), (0.5, 2.78), (1.0, 3.25)] {
        let st = fig13_capacity(&params, SchemeKind::Static, 10, theta, &memories);
        let dy = fig13_capacity(&params, SchemeKind::Dynamic, 10, theta, &memories);
        let ratios: Vec<f64> = st
            .iter()
            .zip(&dy)
            .filter(|(s, _)| s.concurrent > 0)
            .map(|(s, d)| d.concurrent as f64 / s.concurrent as f64)
            .collect();
        let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!(
            (avg - expect).abs() / expect < 0.45,
            "θ={theta}: measured {avg:.2} vs paper {expect}"
        );
    }
}

#[test]
fn buffer_pool_round_trips_a_service_period() {
    // The buffer substrate in one breath: register, fill a Theorem-1
    // sized buffer, consume it, verify the pool drains.
    let params = SystemParams::paper_defaults(SchedulingMethod::RoundRobin);
    let table = SizeTable::build(&params);
    let pool = BufferPool::new(PoolConfig::unbounded()).expect("valid");
    let id = RequestId::new(1);
    pool.register(id).expect("fresh");
    let bs = table.size(10, 2);
    pool.fill(id, bs).expect("unbounded");
    assert_eq!(pool.used(), bs);
    pool.consume(id, bs).expect("exactly drained");
    assert_eq!(pool.used(), Bits::ZERO);
    assert_eq!(pool.stats().underflows, 0);
}
