//! Offline stand-in for `criterion` (see `[patch.crates-io]` in the root
//! `Cargo.toml`).
//!
//! Provides the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group` / `bench_function` / `sample_size` / `finish`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — backed by a simple wall-clock harness:
//! a short warm-up, then `sample_size` timed samples whose per-iteration
//! mean/median/min are printed. There is no statistical analysis, HTML
//! report, or saved baseline; the committed perf baseline lives in
//! BENCH_perf.json and is checked by the repro CLI instead.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 30;
/// Target wall-clock per sample; iterations per sample are calibrated to
/// roughly hit this so fast benches still measure above timer noise.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(20);
const MAX_CALIBRATION_TIME: Duration = Duration::from_millis(200);

/// Entry point handed to each bench target function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into(), self.sample_size, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }
}

/// A named group of related benches sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_bench(&full, self.sample_size, &mut f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to the bench closure; `iter` runs and times the routine.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    calibrating: bool,
}

impl Bencher {
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if self.calibrating {
            // Find an iteration count whose sample time is near the target.
            let mut iters: u64 = 1;
            let deadline = Instant::now() + MAX_CALIBRATION_TIME;
            loop {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(routine());
                }
                let elapsed = start.elapsed();
                if elapsed >= TARGET_SAMPLE_TIME || Instant::now() >= deadline {
                    self.iters_per_sample = iters;
                    break;
                }
                iters = iters.saturating_mul(2);
            }
        } else {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, f: &mut F) {
    let mut b = Bencher {
        iters_per_sample: 1,
        samples: Vec::new(),
        calibrating: true,
    };
    f(&mut b); // calibration pass (also serves as warm-up)
    b.calibrating = false;
    for _ in 0..sample_size {
        f(&mut b);
    }

    let iters = b.iters_per_sample.max(1);
    let mut per_iter: Vec<f64> = b
        .samples
        .iter()
        .map(|d| d.as_secs_f64() / iters as f64)
        .collect();
    if per_iter.is_empty() {
        println!("{id:<50} (no samples — bench closure never called iter)");
        return;
    }
    per_iter.sort_by(f64::total_cmp);
    let min = per_iter[0];
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!(
        "{id:<50} median {} | mean {} | min {} ({} samples x {} iters)",
        fmt_time(median),
        fmt_time(mean),
        fmt_time(min),
        per_iter.len(),
        iters,
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default();
        c.sample_size(3);
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        let mut calls = 0u64;
        group.bench_function("add", |b| b.iter(|| black_box(1u64 + 1)));
        group.finish();
        c.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert!(calls > 0);
    }
}
