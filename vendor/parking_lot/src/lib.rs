//! Offline stand-in for `parking_lot` (see `[patch.crates-io]` in the
//! root `Cargo.toml`). Wraps `std::sync` primitives with parking_lot's
//! non-poisoning API: `lock()` returns the guard directly and a poisoned
//! lock (a thread panicked while holding it) is recovered rather than
//! propagated, matching parking_lot's semantics of not poisoning at all.

#![forbid(unsafe_code)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual exclusion primitive (non-poisoning `lock`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock (non-poisoning `read`/`write`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
