//! Offline stand-in for `proptest` (see `[patch.crates-io]` in the root
//! `Cargo.toml`).
//!
//! Implements the subset of the proptest API this workspace uses:
//! `proptest!` with an optional `#![proptest_config(...)]`, numeric range
//! strategies, tuples, `Just`, `prop_oneof!`, `prop::collection::vec`,
//! `any::<bool>()`, `.prop_map`, and the `prop_assert*` macros.
//!
//! Differences from real proptest, deliberately accepted for an offline
//! vendored build:
//! - cases are drawn from a deterministic per-test RNG (seeded from the
//!   test's module path and name), so failures reproduce across runs;
//! - there is no shrinking — on failure the generated inputs are printed
//!   verbatim and the panic is re-raised;
//! - numeric strategies sample uniformly with no edge-case bias.

use std::fmt;

pub mod test_runner {
    /// Per-test configuration (`cases` is the only knob this workspace uses).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// SplitMix64: tiny, uniform, and plenty for test-case generation.
    pub struct TestRng(u64);

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            TestRng(seed)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform f64 in `[0, 1)` from the top 53 bits.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, n)` via rejection sampling (unbiased).
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "below(0) is ill-defined");
            loop {
                let x = self.next_u64();
                let r = x % n;
                // Accept unless x landed in the biased tail of the last
                // incomplete block of size n.
                if x.wrapping_sub(r) <= u64::MAX - (n - 1) {
                    return r;
                }
            }
        }
    }

    /// Stable seed derived from the test's fully qualified name (FNV-1a).
    pub fn seed_for(name: &str) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

pub mod strategy {
    use super::fmt;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values. Unlike real proptest there is no value tree
    /// or shrinking; `generate` draws one value per test case.
    pub trait Strategy {
        type Value: fmt::Debug;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            U: fmt::Debug,
            F: Fn(Self::Value) -> U,
        {
            Map { source: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone + fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        U: fmt::Debug,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Uniform choice among alternatives; built by `prop_oneof!`.
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Self { options }
        }
    }

    impl<T: fmt::Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64) - (self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as u64) - (start as u64);
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    start + rng.below(span + 1) as $t
                }
            }
        )+};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let v = self.start + rng.next_f64() * (self.end - self.start);
            // Rounding can land exactly on `end`; stay half-open.
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (start, end) = (*self.start(), *self.end());
            assert!(start <= end, "empty range strategy");
            start + rng.next_f64() * (end - start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Types with a canonical strategy, reachable via [`any`].
    pub trait Arbitrary {
        type Strategy: Strategy<Value = Self>;
        fn arbitrary() -> Self::Strategy;
    }

    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;
        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length distribution for [`vec`]: `[min, max]` inclusive.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + rng.below(span + 1) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform (unweighted) choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The test-defining macro. Supports an optional leading
/// `#![proptest_config(expr)]` followed by `fn name(arg in strategy, ...) { .. }`
/// items (each usually carrying `#[test]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __seed = $crate::test_runner::seed_for(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..u64::from(__config.cases) {
                let mut __rng = $crate::test_runner::TestRng::new(
                    __seed ^ __case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                $(
                    let $arg = $crate::strategy::Strategy::generate(
                        &($strat), &mut __rng,
                    );
                )+
                let __inputs = format!(
                    concat!("case #{}:", $(" ", stringify!($arg), " = {:?};",)+),
                    __case, $(&$arg),+
                );
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| { $body }),
                );
                if let Err(__panic) = __outcome {
                    eprintln!(
                        "proptest (offline stub, no shrinking) failed at {}",
                        __inputs,
                    );
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::new(7);
        for _ in 0..2000 {
            let v = Strategy::generate(&(3u32..10), &mut rng);
            assert!((3..10).contains(&v));
            let w = Strategy::generate(&(5usize..=7), &mut rng);
            assert!((5..=7).contains(&w));
            let f = Strategy::generate(&(1.5f64..2.5), &mut rng);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let strat = prop_oneof![Just(0u32), (10u32..20).prop_map(|x| x * 2),];
        let mut rng = crate::test_runner::TestRng::new(11);
        let mut saw_zero = false;
        let mut saw_even = false;
        for _ in 0..200 {
            match Strategy::generate(&strat, &mut rng) {
                0 => saw_zero = true,
                v => {
                    assert!((20..40).contains(&v) && v % 2 == 0);
                    saw_even = true;
                }
            }
        }
        assert!(saw_zero && saw_even);
    }

    #[test]
    fn vec_strategy_length_in_range() {
        let strat = crate::collection::vec(0u8..4, 2..6);
        let mut rng = crate::test_runner::TestRng::new(3);
        for _ in 0..200 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_smoke(a in 0u32..100, flag in any::<bool>()) {
            prop_assert!(a < 100);
            prop_assert_eq!(flag as u32 <= 1, true);
        }
    }
}
