//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access and no registry cache, so the
//! workspace patches `rand` to this vendored implementation (see
//! `[patch.crates-io]` in the root `Cargo.toml`). It provides exactly the
//! subset the workspace uses — [`Rng::gen`] for `f64`/`bool`,
//! [`Rng::gen_range`] over integer ranges, [`SeedableRng::seed_from_u64`],
//! and the [`rngs::SmallRng`] / [`rngs::StdRng`] types — with a fixed,
//! documented algorithm (xoshiro256++ seeded via SplitMix64), so every
//! simulation seed is reproducible across platforms and toolchains.
//!
//! The stream of values is *not* the same as upstream `rand`'s; all
//! committed experiment outputs and bench baselines in this repository
//! were produced with this generator.

#![forbid(unsafe_code)]

/// Core generator interface: a source of `u64`s.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (high half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types a generator can produce via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the uniform "standard" distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

mod range {
    use super::RngCore;

    /// Range types usable with [`super::Rng::gen_range`].
    pub trait SampleRange<T> {
        /// Draws a value uniformly from the range.
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! uint_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "empty range in gen_range");
                    let span = (self.end - self.start) as u64;
                    // Lemire-style unbiased rejection via 128-bit multiply.
                    let mut m = (rng.next_u64() as u128) * (span as u128);
                    let mut lo = m as u64;
                    if lo < span {
                        let t = span.wrapping_neg() % span;
                        while lo < t {
                            m = (rng.next_u64() as u128) * (span as u128);
                            lo = m as u64;
                        }
                    }
                    self.start + (m >> 64) as $t
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (s, e) = (*self.start(), *self.end());
                    if s == e {
                        return s;
                    }
                    if e == <$t>::MAX && s == 0 {
                        return rng.next_u64() as $t;
                    }
                    (s..e + 1).sample_from(rng)
                }
            }
        )*};
    }
    uint_range!(u8, u16, u32, u64, usize);

    impl SampleRange<f64> for core::ops::Range<f64> {
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            assert!(self.start < self.end, "empty range in gen_range");
            let u = <f64 as super::Standard>::sample_standard(rng);
            self.start + u * (self.end - self.start)
        }
    }
}

pub use range::SampleRange;

/// The user-facing generator interface (the subset the workspace uses).
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution
    /// (`f64` uniform in `[0, 1)`, `bool` fair coin).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range` (rejection-sampled, unbiased).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// A fair coin biased to `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ — the shared core of both named generators.
#[derive(Clone, Debug)]
struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256 { s }
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// Small fast generator (xoshiro256++ here; upstream uses the same
    /// family on 64-bit targets).
    #[derive(Clone, Debug)]
    pub struct SmallRng(Xoshiro256);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng(Xoshiro256::seed_from_u64(seed))
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// The "standard" generator. Upstream backs this with ChaCha12; the
    /// offline stand-in uses xoshiro256++ with a distinct seed schedule so
    /// `StdRng` and `SmallRng` streams differ for equal seeds.
    #[derive(Clone, Debug)]
    pub struct StdRng(Xoshiro256);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Domain-separate from SmallRng.
            StdRng(Xoshiro256::seed_from_u64(seed ^ 0x5DF1_DD49_8856_78A3))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let va: Vec<f64> = (0..8).map(|_| a.gen::<f64>()).collect();
        let vb: Vec<f64> = (0..8).map(|_| b.gen::<f64>()).collect();
        let vc: Vec<f64> = (0..8).map(|_| c.gen::<f64>()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn unit_floats_stay_in_range_and_look_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_covers_bounds_without_escaping() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = rng.gen_range(0..5usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = rng.gen_range(3..=4u32);
            assert!(v == 3 || v == 4);
        }
    }

    #[test]
    fn std_and_small_streams_differ() {
        let mut s = SmallRng::seed_from_u64(5);
        let mut d = StdRng::seed_from_u64(5);
        let vs: Vec<u64> = (0..4).map(|_| s.gen::<u64>()).collect();
        let vd: Vec<u64> = (0..4).map(|_| d.gen::<u64>()).collect();
        assert_ne!(vs, vd);
    }
}
