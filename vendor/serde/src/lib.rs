//! Offline resolution stub for `serde`.
//!
//! The workspace's `serde` support is an *optional* feature on the unit
//! and disk crates; nothing enables it by default. This stub exists only
//! so cargo can resolve the optional dependency without network access
//! (see `[patch.crates-io]` in the root `Cargo.toml`). It intentionally
//! provides no derive macros — enabling a workspace `serde` feature in
//! this offline environment is unsupported and will fail to compile.

#![forbid(unsafe_code)]

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
